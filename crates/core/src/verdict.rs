//! Verification verdicts, counterexamples and exploration statistics.

use std::fmt;

use vsync_graph::ExecutionGraph;
use vsync_model::{CheckerKind, ModelKind};

/// Resource ceilings for a single exploration, with graceful degradation:
/// exhausting a budget downgrades the run to
/// [`Verdict::Inconclusive`] carrying partial stats instead of aborting
/// the process. A value of `0` means unlimited.
///
/// Memory is tracked by byte-accounting on the two unbounded structures:
/// the frontier of queued execution graphs (estimated via
/// [`ExecutionGraph::approx_heap_bytes`]) and the sharded dedup set
/// (a fixed per-entry cost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Approximate heap ceiling in bytes for frontier + dedup (0 = unlimited).
    pub max_memory_bytes: u64,
    /// Ceiling on dedup-set entries across all shards (0 = unlimited).
    pub max_dedup_entries: u64,
}

impl ResourceBudget {
    /// Is any ceiling configured?
    pub fn is_limited(&self) -> bool {
        self.max_memory_bytes != 0 || self.max_dedup_entries != 0
    }
}

/// Which search discipline drives the exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SearchMode {
    /// Revisit-driven reads-from search (default): work items are chain
    /// roots explored depth-first by in-place extension; alternative
    /// reads-from / mo choices and backward revisits are materialized at
    /// most once, gated by a hash-before-materialize probe. Each
    /// porf-consistent graph is constructed at most once per orbit.
    #[default]
    Revisit,
    /// The naive enumerate-and-dedup frontier search: every candidate
    /// extension becomes its own work item and the global canonical-hash
    /// set filters duplicates after construction. Retained as the
    /// differential reference oracle (like the closure-based reference
    /// checker), selected with `--search enumerate`.
    Enumerate,
}

impl SearchMode {
    /// Stable machine-readable identifier (used in JSON reports / CLI).
    pub fn key(&self) -> &'static str {
        match self {
            SearchMode::Revisit => "revisit",
            SearchMode::Enumerate => "enumerate",
        }
    }
}

impl fmt::Display for SearchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

impl std::str::FromStr for SearchMode {
    type Err = String;

    fn from_str(s: &str) -> Result<SearchMode, String> {
        match s {
            "revisit" => Ok(SearchMode::Revisit),
            "enumerate" => Ok(SearchMode::Enumerate),
            other => Err(format!("unknown search mode `{other}` (revisit|enumerate)")),
        }
    }
}

/// Configuration of an AMC run.
#[derive(Debug, Clone)]
pub struct AmcConfig {
    /// Memory model to verify against.
    pub model: ModelKind,
    /// Hard cap on events per thread (Bounded-Length safety net).
    pub max_events_per_thread: usize,
    /// Hard cap on popped work items (0 = unlimited). Exceeding it stops
    /// the run with [`Verdict::Inconclusive`] ([`StopReason::MaxGraphs`]).
    pub max_graphs: u64,
    /// Per-thread replay step budget.
    pub step_budget: usize,
    /// Deduplicate work items by content hash (keep on; exposed for the
    /// cross-checking property tests).
    pub dedup: bool,
    /// Quotient the dedup by thread symmetry: work items are keyed on
    /// their canonical form modulo permutations of template-identical
    /// threads ([`vsync_lang::Program::symmetry_partition`]), and each
    /// orbit is explored once through its canonical representative. On by
    /// default; disable (`--no-symmetry`, [`AmcConfig::without_symmetry`])
    /// to recover the naive twin-exploring counts as a reference oracle.
    /// Only effective while `dedup` is on. With symmetry on, exploration
    /// counts (`popped`, `complete_executions`, ...) are per-orbit counts;
    /// verdicts are unchanged.
    pub symmetry: bool,
    /// Keep all complete executions in the result (for tests and graph
    /// counting; off by default to save memory).
    pub collect_executions: bool,
    /// Number of exploration worker threads. `1` (the default) runs the
    /// exact sequential algorithm; `> 1` distributes independent branches
    /// over a shared work queue with a sharded dedup set. Verdicts and
    /// `complete_executions` counts are identical for any worker count
    /// (for failing programs the *first* counterexample found wins, so
    /// partial-run counters may differ).
    pub workers: usize,
    /// Consistency-check implementation: the closure-free fast path
    /// (default) or the naive closure-based reference formulation.
    pub checker: CheckerKind,
    /// Search discipline: the revisit-driven reads-from search (default)
    /// or the naive enumerate-and-dedup frontier (the reference oracle).
    pub search: SearchMode,
    /// Memory / dedup ceilings with graceful degradation (default:
    /// unlimited).
    pub budget: ResourceBudget,
}

impl Default for AmcConfig {
    fn default() -> Self {
        AmcConfig {
            model: ModelKind::Vmm,
            max_events_per_thread: 4_096,
            max_graphs: 20_000_000,
            step_budget: vsync_lang::DEFAULT_STEP_BUDGET,
            dedup: true,
            symmetry: true,
            collect_executions: false,
            workers: 1,
            checker: CheckerKind::Fast,
            search: SearchMode::default(),
            budget: ResourceBudget::default(),
        }
    }
}

impl AmcConfig {
    /// Config with a specific memory model.
    #[must_use]
    pub fn with_model(model: ModelKind) -> Self {
        AmcConfig { model, ..AmcConfig::default() }
    }

    /// Builder-style: collect complete executions.
    #[must_use = "builder methods return the modified config"]
    pub fn collecting(mut self) -> Self {
        self.collect_executions = true;
        self
    }

    /// Builder-style: explore with `workers` threads.
    #[must_use = "builder methods return the modified config"]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style: cap the number of popped work items (0 = unlimited).
    #[must_use = "builder methods return the modified config"]
    pub fn with_max_graphs(mut self, max_graphs: u64) -> Self {
        self.max_graphs = max_graphs;
        self
    }

    /// Builder-style: approximate heap ceiling in bytes (0 = unlimited).
    #[must_use = "builder methods return the modified config"]
    pub fn with_max_memory_bytes(mut self, bytes: u64) -> Self {
        self.budget.max_memory_bytes = bytes;
        self
    }

    /// Builder-style: dedup-entry ceiling (0 = unlimited).
    #[must_use = "builder methods return the modified config"]
    pub fn with_max_dedup_entries(mut self, entries: u64) -> Self {
        self.budget.max_dedup_entries = entries;
        self
    }

    /// Builder-style: disable thread-symmetry reduction (explore every
    /// relabeled twin distinctly — the reference oracle for orbit counts).
    #[must_use = "builder methods return the modified config"]
    pub fn without_symmetry(mut self) -> Self {
        self.symmetry = false;
        self
    }

    /// Builder-style: enable or disable thread-symmetry reduction.
    #[must_use = "builder methods return the modified config"]
    pub fn with_symmetry(mut self, symmetry: bool) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Builder-style: use the naive closure-based reference checker.
    #[must_use = "builder methods return the modified config"]
    pub fn with_reference_checker(mut self) -> Self {
        self.checker = CheckerKind::Reference;
        self
    }

    /// Builder-style: select a consistency-checker implementation.
    #[must_use = "builder methods return the modified config"]
    pub fn with_checker(mut self, checker: CheckerKind) -> Self {
        self.checker = checker;
        self
    }

    /// Builder-style: use the naive enumerate-and-dedup search (the
    /// differential reference oracle for the revisit-driven search).
    #[must_use = "builder methods return the modified config"]
    pub fn with_reference_search(mut self) -> Self {
        self.search = SearchMode::Enumerate;
        self
    }

    /// Builder-style: select a search discipline.
    #[must_use = "builder methods return the modified config"]
    pub fn with_search(mut self, search: SearchMode) -> Self {
        self.search = search;
        self
    }
}

/// Counters describing an exploration (paper Fig. 6's search).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Work items popped from the stack. Under [`SearchMode::Revisit`]
    /// one popped chain root accounts for every in-place extension step of
    /// its chain, so `popped` stays the unit of "graphs processed"
    /// (replays performed) in both search modes.
    pub popped: u64,
    /// Work items pushed.
    pub pushed: u64,
    /// Execution graphs materialized in memory (the initial graph plus
    /// every cloned branch alternate / revisit child). Under
    /// [`SearchMode::Enumerate`] this equals `pushed + 1`; the
    /// revisit-driven search keeps it close to the number of *distinct*
    /// consistent graphs — the headline metric of the rearchitecture.
    pub constructed: u64,
    /// Items skipped as duplicates (content hash already seen).
    pub duplicates: u64,
    /// Items pruned by thread-symmetry reduction: the item was not its
    /// orbit's canonical representative (a non-identity relabeling
    /// produced its canonical form) and the orbit was already admitted.
    /// `duplicates + symmetry_pruned` — the total dedup hits — is
    /// deterministic for every worker count; the *split* depends on which
    /// twin of an orbit arrived first, so it can vary between parallel
    /// runs (`workers == 1` is fully deterministic).
    pub symmetry_pruned: u64,
    /// Items discarded as inconsistent with the memory model.
    pub inconsistent: u64,
    /// Items discarded by the wasteful filter `W(G)`.
    pub wasteful: u64,
    /// Revisit branches generated.
    pub revisits: u64,
    /// Complete executions reached (all threads terminated).
    pub complete_executions: u64,
    /// Blocked graphs inspected by the stagnancy analysis.
    pub blocked_graphs: u64,
    /// Total events across all popped graphs (throughput accounting).
    pub events: u64,
    /// Frontier work items abandoned unexplored when a budget or cap
    /// stopped the run early (always 0 for completed runs).
    pub frontier_dropped: u64,
    /// Dedup-set probes: canonical/content hashes computed by the
    /// enumerate search plus hash-before-materialize view encodings by
    /// the revisit search (each probe is one full graph/view encoding).
    pub probes: u64,
    /// Per-phase wall-clock attribution (total/count/max per
    /// [`EnginePhase`]). Empty unless the run had profiling enabled
    /// ([`Session::profile`](crate::Session::profile) or an attached
    /// event sink).
    pub phases: crate::telemetry::PhaseProfile,
}

impl ExploreStats {
    /// Field-wise accumulation — used to merge per-worker stats.
    pub fn merge(&mut self, other: &ExploreStats) {
        self.popped += other.popped;
        self.pushed += other.pushed;
        self.constructed += other.constructed;
        self.duplicates += other.duplicates;
        self.symmetry_pruned += other.symmetry_pruned;
        self.inconsistent += other.inconsistent;
        self.wasteful += other.wasteful;
        self.revisits += other.revisits;
        self.complete_executions += other.complete_executions;
        self.blocked_graphs += other.blocked_graphs;
        self.events += other.events;
        self.frontier_dropped += other.frontier_dropped;
        self.probes += other.probes;
        self.phases.merge(&other.phases);
    }
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} executions ({} popped, {} pushed, {} constructed, {} dups, {} sym-pruned, \
             {} inconsistent, {} wasteful, {} revisits, {} blocked)",
            self.complete_executions,
            self.popped,
            self.pushed,
            self.constructed,
            self.duplicates,
            self.symmetry_pruned,
            self.inconsistent,
            self.wasteful,
            self.revisits,
            self.blocked_graphs
        )?;
        if self.frontier_dropped > 0 {
            write!(f, " [{} frontier items dropped]", self.frontier_dropped)?;
        }
        Ok(())
    }
}

/// A violation witness: the offending execution graph plus a description.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The finite witness graph (paper §1.2: AT violations are witnessed by
    /// finite graphs with a `⊥` read).
    pub graph: ExecutionGraph,
    /// Human-readable description of what failed.
    pub message: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.message)?;
        write!(f, "{}", self.graph.render())
    }
}

/// Why a run stopped before the search space was exhausted. Unifies the
/// external interruptions (cancellation, deadline) with the internal
/// exploration caps (work-item cap, memory / dedup budgets): all of them
/// produce [`Verdict::Inconclusive`] with the same partial-stats shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A shared [`crate::CancelToken`] was fired.
    Cancelled,
    /// The session's wall-clock deadline expired.
    DeadlineExceeded,
    /// [`AmcConfig::max_graphs`] popped work items were exceeded.
    MaxGraphs,
    /// The [`ResourceBudget::max_memory_bytes`] ceiling was reached.
    MemoryBudget,
    /// The [`ResourceBudget::max_dedup_entries`] ceiling was reached.
    DedupBudget,
}

impl StopReason {
    /// Stable machine-readable identifier (used in JSON reports).
    pub fn key(&self) -> &'static str {
        match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExceeded => "deadline",
            StopReason::MaxGraphs => "max_graphs",
            StopReason::MemoryBudget => "memory_budget",
            StopReason::DedupBudget => "dedup_budget",
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Cancelled => f.write_str("cancelled"),
            StopReason::DeadlineExceeded => f.write_str("deadline exceeded"),
            StopReason::MaxGraphs => f.write_str("work-item cap exceeded"),
            StopReason::MemoryBudget => f.write_str("memory budget exhausted"),
            StopReason::DedupBudget => f.write_str("dedup budget exhausted"),
        }
    }
}

/// Partial-search payload of [`Verdict::Inconclusive`]: why the run
/// stopped and how much of the space was covered before it did. A
/// degraded run is *sound but incomplete* — it never claims `Verified`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inconclusive {
    /// What cut the run short.
    pub reason: StopReason,
    /// Work items fully processed before the stop.
    pub explored: u64,
    /// Queued work items abandoned unexplored at the stop.
    pub frontier_dropped: u64,
}

impl fmt::Display for Inconclusive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} explored graphs ({} frontier items dropped)",
            self.reason, self.explored, self.frontier_dropped
        )
    }
}

/// Engine phase in which a caught panic occurred (carried by
/// [`EngineError`] so fault reports localize the failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePhase {
    /// Replaying a program prefix over an execution graph.
    Replay,
    /// Probing / inserting into the sharded dedup set
    /// ([`SearchMode::Enumerate`]'s content/canonical hashing).
    Dedup,
    /// The revisit engine's hash-before-materialize probe: encoding a
    /// [`GraphView`](vsync_graph::GraphView) and consulting the
    /// `visited`/`leaves` seen-sets *before* any graph is built.
    Probe,
    /// Running the memory-model consistency check.
    Consistency,
    /// Extending a graph with the next event (rf / mo branching).
    Extend,
    /// Generating backward revisits for a newly placed write.
    Revisit,
    /// Evaluating final-state checks on a complete execution.
    FinalCheck,
    /// The stagnancy analysis on a blocked graph.
    Stagnancy,
    /// The exploration driver outside any per-graph stage.
    Driver,
    /// An optimizer probe (candidate verification / witness replay).
    Optimize,
    /// Corpus-runner bookkeeping around a file check.
    Corpus,
}

impl EnginePhase {
    /// Number of phases (the length of [`EnginePhase::ALL`]).
    pub const COUNT: usize = 11;

    /// Every phase, in declaration order — the index of a phase in this
    /// array is [`EnginePhase::index`], the layout key of
    /// [`PhaseProfile`](crate::telemetry::PhaseProfile).
    pub const ALL: [EnginePhase; EnginePhase::COUNT] = [
        EnginePhase::Replay,
        EnginePhase::Dedup,
        EnginePhase::Probe,
        EnginePhase::Consistency,
        EnginePhase::Extend,
        EnginePhase::Revisit,
        EnginePhase::FinalCheck,
        EnginePhase::Stagnancy,
        EnginePhase::Driver,
        EnginePhase::Optimize,
        EnginePhase::Corpus,
    ];

    /// Dense index of this phase in [`EnginePhase::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable machine-readable identifier (used in JSON reports).
    pub fn key(&self) -> &'static str {
        match self {
            EnginePhase::Replay => "replay",
            EnginePhase::Dedup => "dedup",
            EnginePhase::Probe => "probe",
            EnginePhase::Consistency => "consistency",
            EnginePhase::Extend => "extend",
            EnginePhase::Revisit => "revisit",
            EnginePhase::FinalCheck => "final_check",
            EnginePhase::Stagnancy => "stagnancy",
            EnginePhase::Driver => "driver",
            EnginePhase::Optimize => "optimize",
            EnginePhase::Corpus => "corpus",
        }
    }
}

impl fmt::Display for EnginePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// A structured record of a panic caught inside the engine. The run that
/// produced it terminates with [`Verdict::Error`] instead of aborting the
/// process; sibling workers drain the abandoned queue share and exit
/// cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// The stage the panicking code was executing.
    pub phase: EnginePhase,
    /// Index of the worker thread that panicked (`None` for the
    /// sequential driver or phases without a worker identity).
    pub thread: Option<usize>,
    /// The panic payload, downcast to a string where possible.
    pub payload: String,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "panic in {} phase", self.phase)?;
        if let Some(t) = self.thread {
            write!(f, " (worker {t})")?;
        }
        write!(f, ": {}", self.payload)
    }
}

/// Outcome of a verification run.
#[derive(Debug, Clone)]
#[must_use = "a dropped Verdict silently discards the verification outcome"]
pub enum Verdict {
    /// Every execution is safe and every await terminates.
    Verified,
    /// A safety violation: failed assertion or final-state check.
    Safety(Counterexample),
    /// An await-termination violation (paper Def. 1): a stagnant graph.
    AwaitTermination(Counterexample),
    /// The program broke a modeling obligation (Bounded-Length /
    /// Bounded-Effect principles).
    Fault(String),
    /// The run was cut short — by cancellation, a deadline, or a resource
    /// budget — before exploration finished. Not a statement about the
    /// program: the explored prefix contained no violation, but the rest
    /// of the space was never searched.
    Inconclusive(Inconclusive),
    /// The engine itself failed: a panic was caught inside a worker or
    /// probe. The run terminated cleanly but its result means nothing.
    Error(EngineError),
}

impl Verdict {
    /// Did verification succeed?
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified)
    }

    /// The counterexample, for violation verdicts.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Safety(c) | Verdict::AwaitTermination(c) => Some(c),
            _ => None,
        }
    }

    /// The stop reason, for inconclusive verdicts.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            Verdict::Inconclusive(i) => Some(i.reason),
            _ => None,
        }
    }

    /// The caught engine failure, for error verdicts.
    pub fn engine_error(&self) -> Option<&EngineError> {
        match self {
            Verdict::Error(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified => f.write_str("verified"),
            Verdict::Safety(c) => write!(f, "safety violation: {}", c.message),
            Verdict::AwaitTermination(c) => {
                write!(f, "await-termination violation: {}", c.message)
            }
            Verdict::Fault(m) => write!(f, "fault: {m}"),
            Verdict::Inconclusive(i) => write!(f, "inconclusive: {i}"),
            Verdict::Error(e) => write!(f, "engine error: {e}"),
        }
    }
}

/// Full result of [`crate::explore`].
#[derive(Debug, Clone)]
#[must_use = "a dropped AmcResult silently discards the verification outcome"]
pub struct AmcResult {
    /// The verdict.
    pub verdict: Verdict,
    /// Exploration counters.
    pub stats: ExploreStats,
    /// Complete executions (when [`AmcConfig::collect_executions`] is set).
    pub executions: Vec<ExecutionGraph>,
}

impl AmcResult {
    /// Shorthand: did the program verify?
    pub fn is_verified(&self) -> bool {
        self.verdict.is_verified()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn default_config_is_vmm_with_dedup_and_symmetry() {
        let c = AmcConfig::default();
        assert_eq!(c.model, ModelKind::Vmm);
        assert!(c.dedup);
        assert!(c.symmetry);
        assert!(!c.collect_executions);
        assert!(!c.budget.is_limited());
        assert!(AmcConfig::default().collecting().collect_executions);
        assert!(!AmcConfig::default().without_symmetry().symmetry);
        assert!(AmcConfig::default().with_symmetry(false).with_symmetry(true).symmetry);
        let b = AmcConfig::default().with_max_memory_bytes(1 << 20).with_max_dedup_entries(7);
        assert_eq!(b.budget, ResourceBudget { max_memory_bytes: 1 << 20, max_dedup_entries: 7 });
        assert!(b.budget.is_limited());
    }

    #[test]
    fn verdict_accessors() {
        assert!(Verdict::Verified.is_verified());
        let ce = Counterexample {
            graph: ExecutionGraph::new(0, BTreeMap::new()),
            message: "boom".into(),
        };
        let v = Verdict::Safety(ce);
        assert!(!v.is_verified());
        assert_eq!(v.counterexample().unwrap().message, "boom");
        assert!(v.to_string().contains("safety violation"));
        assert!(Verdict::Fault("x".into()).to_string().contains("fault"));
    }

    #[test]
    fn inconclusive_and_error_verdicts_carry_structured_payloads() {
        let v = Verdict::Inconclusive(Inconclusive {
            reason: StopReason::MemoryBudget,
            explored: 42,
            frontier_dropped: 7,
        });
        assert!(!v.is_verified());
        assert_eq!(v.stop_reason(), Some(StopReason::MemoryBudget));
        let d = v.to_string();
        assert!(d.contains("inconclusive"), "{d}");
        assert!(d.contains("memory budget"), "{d}");
        assert!(d.contains("42 explored"), "{d}");

        let e = Verdict::Error(EngineError {
            phase: EnginePhase::Replay,
            thread: Some(3),
            payload: "boom".into(),
        });
        assert!(!e.is_verified());
        assert_eq!(e.engine_error().unwrap().phase, EnginePhase::Replay);
        let d = e.to_string();
        assert!(d.contains("engine error"), "{d}");
        assert!(d.contains("replay"), "{d}");
        assert!(d.contains("worker 3"), "{d}");
    }

    #[test]
    fn stop_reason_keys_are_stable() {
        for (r, k) in [
            (StopReason::Cancelled, "cancelled"),
            (StopReason::DeadlineExceeded, "deadline"),
            (StopReason::MaxGraphs, "max_graphs"),
            (StopReason::MemoryBudget, "memory_budget"),
            (StopReason::DedupBudget, "dedup_budget"),
        ] {
            assert_eq!(r.key(), k);
        }
    }

    #[test]
    fn stats_display_mentions_counters() {
        let s = ExploreStats { popped: 3, complete_executions: 2, ..Default::default() };
        let d = s.to_string();
        assert!(d.contains("2 executions"));
        assert!(d.contains("3 popped"));
        assert!(!d.contains("dropped"));
        let s = ExploreStats { frontier_dropped: 5, ..s };
        assert!(s.to_string().contains("5 frontier items dropped"));
    }
}
