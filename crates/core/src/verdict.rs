//! Verification verdicts, counterexamples and exploration statistics.

use std::fmt;

use vsync_graph::ExecutionGraph;
use vsync_model::{CheckerKind, ModelKind};

/// Configuration of an AMC run.
#[derive(Debug, Clone)]
pub struct AmcConfig {
    /// Memory model to verify against.
    pub model: ModelKind,
    /// Hard cap on events per thread (Bounded-Length safety net).
    pub max_events_per_thread: usize,
    /// Hard cap on popped work items (0 = unlimited).
    pub max_graphs: u64,
    /// Per-thread replay step budget.
    pub step_budget: usize,
    /// Deduplicate work items by content hash (keep on; exposed for the
    /// cross-checking property tests).
    pub dedup: bool,
    /// Quotient the dedup by thread symmetry: work items are keyed on
    /// their canonical form modulo permutations of template-identical
    /// threads ([`vsync_lang::Program::symmetry_partition`]), and each
    /// orbit is explored once through its canonical representative. On by
    /// default; disable (`--no-symmetry`, [`AmcConfig::without_symmetry`])
    /// to recover the naive twin-exploring counts as a reference oracle.
    /// Only effective while `dedup` is on. With symmetry on, exploration
    /// counts (`popped`, `complete_executions`, ...) are per-orbit counts;
    /// verdicts are unchanged.
    pub symmetry: bool,
    /// Keep all complete executions in the result (for tests and graph
    /// counting; off by default to save memory).
    pub collect_executions: bool,
    /// Number of exploration worker threads. `1` (the default) runs the
    /// exact sequential algorithm; `> 1` distributes independent branches
    /// over a shared work queue with a sharded dedup set. Verdicts and
    /// `complete_executions` counts are identical for any worker count
    /// (for failing programs the *first* counterexample found wins, so
    /// partial-run counters may differ).
    pub workers: usize,
    /// Consistency-check implementation: the closure-free fast path
    /// (default) or the naive closure-based reference formulation.
    pub checker: CheckerKind,
}

impl Default for AmcConfig {
    fn default() -> Self {
        AmcConfig {
            model: ModelKind::Vmm,
            max_events_per_thread: 4_096,
            max_graphs: 20_000_000,
            step_budget: vsync_lang::DEFAULT_STEP_BUDGET,
            dedup: true,
            symmetry: true,
            collect_executions: false,
            workers: 1,
            checker: CheckerKind::Fast,
        }
    }
}

impl AmcConfig {
    /// Config with a specific memory model.
    #[must_use]
    pub fn with_model(model: ModelKind) -> Self {
        AmcConfig { model, ..AmcConfig::default() }
    }

    /// Builder-style: collect complete executions.
    #[must_use = "builder methods return the modified config"]
    pub fn collecting(mut self) -> Self {
        self.collect_executions = true;
        self
    }

    /// Builder-style: explore with `workers` threads.
    #[must_use = "builder methods return the modified config"]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style: cap the number of popped work items (0 = unlimited).
    #[must_use = "builder methods return the modified config"]
    pub fn with_max_graphs(mut self, max_graphs: u64) -> Self {
        self.max_graphs = max_graphs;
        self
    }

    /// Builder-style: disable thread-symmetry reduction (explore every
    /// relabeled twin distinctly — the reference oracle for orbit counts).
    #[must_use = "builder methods return the modified config"]
    pub fn without_symmetry(mut self) -> Self {
        self.symmetry = false;
        self
    }

    /// Builder-style: enable or disable thread-symmetry reduction.
    #[must_use = "builder methods return the modified config"]
    pub fn with_symmetry(mut self, symmetry: bool) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Builder-style: use the naive closure-based reference checker.
    #[must_use = "builder methods return the modified config"]
    pub fn with_reference_checker(mut self) -> Self {
        self.checker = CheckerKind::Reference;
        self
    }

    /// Builder-style: select a consistency-checker implementation.
    #[must_use = "builder methods return the modified config"]
    pub fn with_checker(mut self, checker: CheckerKind) -> Self {
        self.checker = checker;
        self
    }
}

/// Counters describing an exploration (paper Fig. 6's search).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Work items popped from the stack.
    pub popped: u64,
    /// Work items pushed.
    pub pushed: u64,
    /// Items skipped as duplicates (content hash already seen).
    pub duplicates: u64,
    /// Items pruned by thread-symmetry reduction: the item was not its
    /// orbit's canonical representative (a non-identity relabeling
    /// produced its canonical form) and the orbit was already admitted.
    /// `duplicates + symmetry_pruned` — the total dedup hits — is
    /// deterministic for every worker count; the *split* depends on which
    /// twin of an orbit arrived first, so it can vary between parallel
    /// runs (`workers == 1` is fully deterministic).
    pub symmetry_pruned: u64,
    /// Items discarded as inconsistent with the memory model.
    pub inconsistent: u64,
    /// Items discarded by the wasteful filter `W(G)`.
    pub wasteful: u64,
    /// Revisit branches generated.
    pub revisits: u64,
    /// Complete executions reached (all threads terminated).
    pub complete_executions: u64,
    /// Blocked graphs inspected by the stagnancy analysis.
    pub blocked_graphs: u64,
    /// Total events across all popped graphs (throughput accounting).
    pub events: u64,
}

impl ExploreStats {
    /// Field-wise accumulation — used to merge per-worker stats.
    pub fn merge(&mut self, other: &ExploreStats) {
        self.popped += other.popped;
        self.pushed += other.pushed;
        self.duplicates += other.duplicates;
        self.symmetry_pruned += other.symmetry_pruned;
        self.inconsistent += other.inconsistent;
        self.wasteful += other.wasteful;
        self.revisits += other.revisits;
        self.complete_executions += other.complete_executions;
        self.blocked_graphs += other.blocked_graphs;
        self.events += other.events;
    }
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} executions ({} popped, {} pushed, {} dups, {} sym-pruned, \
             {} inconsistent, {} wasteful, {} revisits, {} blocked)",
            self.complete_executions,
            self.popped,
            self.pushed,
            self.duplicates,
            self.symmetry_pruned,
            self.inconsistent,
            self.wasteful,
            self.revisits,
            self.blocked_graphs
        )
    }
}

/// A violation witness: the offending execution graph plus a description.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The finite witness graph (paper §1.2: AT violations are witnessed by
    /// finite graphs with a `⊥` read).
    pub graph: ExecutionGraph,
    /// Human-readable description of what failed.
    pub message: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.message)?;
        write!(f, "{}", self.graph.render())
    }
}

/// Why a run stopped before reaching a real verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// A shared [`crate::CancelToken`] was fired.
    Cancelled,
    /// The session's wall-clock deadline expired.
    DeadlineExceeded,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled => f.write_str("cancelled"),
            Interrupt::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

/// Outcome of a verification run.
#[derive(Debug, Clone)]
#[must_use = "a dropped Verdict silently discards the verification outcome"]
pub enum Verdict {
    /// Every execution is safe and every await terminates.
    Verified,
    /// A safety violation: failed assertion or final-state check.
    Safety(Counterexample),
    /// An await-termination violation (paper Def. 1): a stagnant graph.
    AwaitTermination(Counterexample),
    /// The program broke a modeling obligation (Bounded-Length /
    /// Bounded-Effect principles) or an exploration budget.
    Fault(String),
    /// The run was cut short — by a [`crate::CancelToken`] or a deadline —
    /// before exploration finished. Not a statement about the program.
    Interrupted(Interrupt),
}

impl Verdict {
    /// Did verification succeed?
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified)
    }

    /// The counterexample, for violation verdicts.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Safety(c) | Verdict::AwaitTermination(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified => f.write_str("verified"),
            Verdict::Safety(c) => write!(f, "safety violation: {}", c.message),
            Verdict::AwaitTermination(c) => {
                write!(f, "await-termination violation: {}", c.message)
            }
            Verdict::Fault(m) => write!(f, "fault: {m}"),
            Verdict::Interrupted(i) => write!(f, "interrupted: {i}"),
        }
    }
}

/// Full result of [`crate::explore`].
#[derive(Debug, Clone)]
#[must_use = "a dropped AmcResult silently discards the verification outcome"]
pub struct AmcResult {
    /// The verdict.
    pub verdict: Verdict,
    /// Exploration counters.
    pub stats: ExploreStats,
    /// Complete executions (when [`AmcConfig::collect_executions`] is set).
    pub executions: Vec<ExecutionGraph>,
}

impl AmcResult {
    /// Shorthand: did the program verify?
    pub fn is_verified(&self) -> bool {
        self.verdict.is_verified()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn default_config_is_vmm_with_dedup_and_symmetry() {
        let c = AmcConfig::default();
        assert_eq!(c.model, ModelKind::Vmm);
        assert!(c.dedup);
        assert!(c.symmetry);
        assert!(!c.collect_executions);
        assert!(AmcConfig::default().collecting().collect_executions);
        assert!(!AmcConfig::default().without_symmetry().symmetry);
        assert!(AmcConfig::default().with_symmetry(false).with_symmetry(true).symmetry);
    }

    #[test]
    fn verdict_accessors() {
        assert!(Verdict::Verified.is_verified());
        let ce = Counterexample {
            graph: ExecutionGraph::new(0, BTreeMap::new()),
            message: "boom".into(),
        };
        let v = Verdict::Safety(ce);
        assert!(!v.is_verified());
        assert_eq!(v.counterexample().unwrap().message, "boom");
        assert!(v.to_string().contains("safety violation"));
        assert!(Verdict::Fault("x".into()).to_string().contains("fault"));
    }

    #[test]
    fn stats_display_mentions_counters() {
        let s = ExploreStats { popped: 3, complete_executions: 2, ..Default::default() };
        let d = s.to_string();
        assert!(d.contains("2 executions"));
        assert!(d.contains("3 popped"));
    }
}
