//! Graph-driven replay: the operational face of `consP(G)` (paper §2.1.2).
//!
//! Threads are deterministic once every read value is fixed, so a thread's
//! state can be reconstructed by executing its code against the events
//! already in the graph. Replay reports, per thread, whether it has
//! finished, which event it would generate next ([`ThreadStatus::Ready`]),
//! or that it is blocked on an await read with a `⊥` reads-from edge.
//!
//! Replay is also where the paper's two side conditions are enforced:
//!
//! * the **wasteful filter** `W(G)` — an await reading from the same write
//!   in two consecutive iterations marks the graph wasteful (Def. 2);
//! * the **Bounded-Effect principle** — a failed `await_rmw` iteration
//!   whose elided write would have changed the value is a modeling fault
//!   (Def. 3, footnote 9).

use vsync_graph::{EventId, EventKind, ExecutionGraph, Loc, Mode, RfSource, Value};

use crate::insn::{Addr, Instr, Operand, ResolvedTest, RmwOp, Test, NUM_REGS};
use crate::program::Program;

/// What kind of read a pending read event is — enough for the explorer to
/// derive the event flags for any candidate reads-from choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadDesc {
    /// A plain load; never writes.
    Plain,
    /// The read part of an unconditional RMW; always followed by a write.
    Rmw {
        /// Update operation.
        op: RmwOp,
        /// Resolved operand.
        operand: Value,
    },
    /// The read part of a CAS; writes `new` iff the value equals `expected`.
    Cas {
        /// Expected value.
        expected: Value,
        /// Replacement value.
        new: Value,
    },
    /// A polling read of `await_load`; exits when `exit` holds.
    AwaitLoad {
        /// Exit condition.
        exit: ResolvedTest,
    },
    /// A polling read of `await_rmw`; on exit performs the RMW.
    AwaitRmw {
        /// Exit condition on the old value.
        exit: ResolvedTest,
        /// Update operation.
        op: RmwOp,
        /// Resolved operand.
        operand: Value,
    },
    /// A polling read of `await_cas`.
    AwaitCas {
        /// Expected value (also the exit condition).
        expected: Value,
        /// Replacement value.
        new: Value,
    },
}

impl ReadDesc {
    /// Is this read polled by an await instruction?
    pub fn is_await(self) -> bool {
        matches!(
            self,
            ReadDesc::AwaitLoad { .. } | ReadDesc::AwaitRmw { .. } | ReadDesc::AwaitCas { .. }
        )
    }

    /// Does the await exit (or the instruction complete) after reading `v`?
    /// Non-await reads always "exit".
    pub fn exits(self, v: Value) -> bool {
        match self {
            ReadDesc::Plain | ReadDesc::Rmw { .. } | ReadDesc::Cas { .. } => true,
            ReadDesc::AwaitLoad { exit } | ReadDesc::AwaitRmw { exit, .. } => exit.eval(v),
            ReadDesc::AwaitCas { expected, .. } => v == expected,
        }
    }

    /// The value written by the instruction's write part after reading `v`,
    /// or `None` if no write part follows.
    pub fn write_on(self, v: Value) -> Option<Value> {
        match self {
            ReadDesc::Plain | ReadDesc::AwaitLoad { .. } => None,
            ReadDesc::Rmw { op, operand } => Some(op.apply(v, operand)),
            ReadDesc::Cas { expected, new } => (v == expected).then_some(new),
            ReadDesc::AwaitRmw { exit, op, operand } => {
                exit.eval(v).then(|| op.apply(v, operand))
            }
            ReadDesc::AwaitCas { expected, new } => (v == expected).then_some(new),
        }
    }

    /// The Bounded-Effect principle check for failed await iterations: the
    /// elided write of a failed `await_rmw` iteration must preserve the
    /// value.
    pub fn bounded_effect_ok(self, v: Value) -> bool {
        match self {
            ReadDesc::AwaitRmw { exit, op, operand } => {
                exit.eval(v) || op.apply(v, operand) == v
            }
            _ => true,
        }
    }
}

/// The next event a runnable thread would generate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PendingOp {
    /// A read of `loc`; the explorer chooses the reads-from edge.
    Read {
        /// Location.
        loc: Loc,
        /// Barrier mode.
        mode: Mode,
        /// Read semantics.
        desc: ReadDesc,
        /// For await reads: the reads-from source of the previous failed
        /// iteration of this await instance (for the wasteful filter).
        prev_rf: Option<RfSource>,
    },
    /// A write of `val` to `loc` (value fully determined).
    Write {
        /// Location.
        loc: Loc,
        /// Value.
        val: Value,
        /// Barrier mode.
        mode: Mode,
        /// Is this the write part of an RMW?
        rmw: bool,
    },
    /// A fence.
    Fence {
        /// Strength.
        mode: Mode,
    },
    /// A failed assertion about to generate an error event.
    Error {
        /// Message.
        msg: String,
    },
}

/// A thread stuck on an await read whose reads-from edge is `⊥`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedAwait {
    /// The pending read event (already in the graph).
    pub read: EventId,
    /// Polled location.
    pub loc: Loc,
    /// Barrier mode of the polling read.
    pub mode: Mode,
    /// Read semantics (used by the stagnancy analysis).
    pub desc: ReadDesc,
    /// Reads-from source of the previous failed iteration, if any.
    pub prev_rf: Option<RfSource>,
}

/// Status of one thread after replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Control left the program text; the thread terminated.
    Finished,
    /// The thread's next step generates this event, not yet in the graph.
    Ready(PendingOp),
    /// The thread is blocked inside an await (paper: removed from `T_G`).
    Blocked(BlockedAwait),
    /// The thread executed an error event (failed assertion).
    Errored,
    /// The program violated a modeling obligation (Bounded-Effect or
    /// Bounded-Length principle, or an internal replay mismatch).
    Fault(String),
}

impl ThreadStatus {
    /// Is the thread runnable (would generate a new event)?
    pub fn is_ready(&self) -> bool {
        matches!(self, ThreadStatus::Ready(_))
    }
}

/// Result of replaying a whole program against a graph.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Per-thread statuses.
    pub threads: Vec<ThreadStatus>,
    /// Did some await read from the same write in two consecutive
    /// iterations (`W(G)`, paper Def. 2)?
    pub wasteful: bool,
}

impl ReplayOutcome {
    /// Indices of ready threads.
    pub fn ready_threads(&self) -> impl Iterator<Item = u32> + '_ {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_ready())
            .map(|(t, _)| t as u32)
    }

    /// The blocked awaits of all threads.
    pub fn blocked(&self) -> impl Iterator<Item = &BlockedAwait> + '_ {
        self.threads.iter().filter_map(|s| match s {
            ThreadStatus::Blocked(b) => Some(b),
            _ => None,
        })
    }

    /// First fault, if any thread faulted.
    pub fn fault(&self) -> Option<&str> {
        self.threads.iter().find_map(|s| match s {
            ThreadStatus::Fault(m) => Some(m.as_str()),
            _ => None,
        })
    }

    /// Did any thread consume an error event?
    pub fn errored(&self) -> bool {
        self.threads.iter().any(|s| matches!(s, ThreadStatus::Errored))
    }
}

/// Maximum instructions one thread may execute in a single replay before
/// the Bounded-Length principle is considered violated.
pub const DEFAULT_STEP_BUDGET: usize = 200_000;

/// Replay `prog` against `g`.
///
/// Read-event flags (`rmw`, `awaiting`) are *derived* data: replay repairs
/// them in place when a revisit changed a read's value (and with it whether
/// a write part follows).
pub fn replay(prog: &Program, g: &mut ExecutionGraph) -> ReplayOutcome {
    replay_with_budget(prog, g, DEFAULT_STEP_BUDGET)
}

/// [`replay`] with an explicit per-thread step budget.
pub fn replay_with_budget(
    prog: &Program,
    g: &mut ExecutionGraph,
    budget: usize,
) -> ReplayOutcome {
    replay_inner(prog, g, budget, false)
}

/// Replay `prog` against a graph that was recorded under a *different
/// barrier assignment* of the same program, adopting `prog`'s modes.
///
/// Event kinds, values, reads-from edges and modification orders must
/// still match what `prog` would generate — modes are the only tolerated
/// difference, and each mismatching event is rewritten in place to the
/// program's mode. This is how the optimizer's witness cache re-interprets
/// a cached violating execution under a new candidate assignment: the
/// structure of the execution is mode-independent (control flow depends
/// only on values), so if the re-moded graph is still consistent and still
/// violating, it refutes the candidate without a fresh exploration.
///
/// Structural divergence *is* possible across assignments — a fence
/// relaxed to `rlx` emits no event, so a graph recorded with the fence
/// present cannot be re-interpreted without it (and vice versa). Such
/// witnesses surface as [`ThreadStatus::Fault`] mismatches and the caller
/// simply treats them as inapplicable.
pub fn replay_adopt_modes(prog: &Program, g: &mut ExecutionGraph) -> ReplayOutcome {
    replay_inner(prog, g, DEFAULT_STEP_BUDGET, true)
}

fn replay_inner(
    prog: &Program,
    g: &mut ExecutionGraph,
    budget: usize,
    adopt_modes: bool,
) -> ReplayOutcome {
    let mut threads = Vec::with_capacity(prog.num_threads());
    let mut wasteful = false;
    for t in 0..prog.num_threads() as u32 {
        let mut tr = ThreadReplay::new(prog, t, budget);
        tr.adopt_modes = adopt_modes;
        let status = tr.run(g);
        wasteful |= tr.wasteful;
        threads.push(status);
    }
    ReplayOutcome { threads, wasteful }
}

struct ThreadReplay<'p> {
    prog: &'p Program,
    thread: u32,
    regs: [Value; NUM_REGS],
    pc: usize,
    ev: usize,
    steps: usize,
    budget: usize,
    wasteful: bool,
    /// Tolerate mode-only mismatches and rewrite the graph's event modes
    /// to the program's (see [`replay_adopt_modes`]).
    adopt_modes: bool,
}

enum Consume {
    /// Event present; for reads carries the observed value.
    Got(Option<Value>),
    /// Event not in the graph: the thread is ready with this op.
    Missing(PendingOp),
    /// The event in the graph contradicts the program.
    Mismatch(String),
    /// A `⊥` read (await reads only).
    Pending,
}

impl<'p> ThreadReplay<'p> {
    fn new(prog: &'p Program, thread: u32, budget: usize) -> Self {
        ThreadReplay {
            prog,
            thread,
            regs: [0; NUM_REGS],
            pc: 0,
            ev: 0,
            steps: 0,
            budget,
            wasteful: false,
            adopt_modes: false,
        }
    }

    fn operand(&self, o: Operand) -> Value {
        match o {
            Operand::Reg(r) => self.regs[r.0 as usize],
            Operand::Imm(v) => v,
        }
    }

    fn addr(&self, a: Addr) -> Loc {
        match a {
            Addr::Imm(x) => x,
            Addr::Reg(r) => self.regs[r.0 as usize],
            Addr::RegOff(r, o) => self.regs[r.0 as usize].wrapping_add(o),
        }
    }

    fn test(&self, t: &Test) -> ResolvedTest {
        ResolvedTest {
            mask: t.mask.map(|m| self.operand(m)).unwrap_or(u64::MAX),
            cmp: t.cmp,
            rhs: self.operand(t.rhs),
        }
    }

    /// Try to consume the next read event of this thread.
    fn consume_read(
        &mut self,
        g: &mut ExecutionGraph,
        loc: Loc,
        mode: Mode,
        desc: ReadDesc,
        prev_rf: Option<RfSource>,
    ) -> Consume {
        let id = EventId::new(self.thread, self.ev as u32);
        if self.ev >= g.thread_len(self.thread) {
            return Consume::Missing(PendingOp::Read { loc, mode, desc, prev_rf });
        }
        let (eloc, emode, rf, ermw, eawait) = match &g.event(id).kind {
            EventKind::Read { loc, mode, rf, rmw, awaiting } => {
                (*loc, *mode, *rf, *rmw, *awaiting)
            }
            k => return Consume::Mismatch(format!("expected read at {id}, found {k}")),
        };
        if eloc != loc || (emode != mode && !self.adopt_modes) {
            return Consume::Mismatch(format!(
                "read at {id} accesses {eloc:#x}/{emode}, program says {loc:#x}/{mode}"
            ));
        }
        if emode != mode {
            g.set_event_mode(id, mode);
        }
        match rf {
            RfSource::Bottom => {
                if !desc.is_await() {
                    return Consume::Mismatch(format!("non-await read at {id} has ⊥ source"));
                }
                Consume::Pending
            }
            RfSource::Write(w) => {
                let v = g.write_value(w);
                // Repair derived flags (a revisit may have changed v).
                // Only touch the graph when they actually changed: a
                // redundant write would force a copy-on-write of the whole
                // thread's (usually shared) event storage.
                let (rmw, awaiting) = (desc.write_on(v).is_some(), desc.is_await());
                if (ermw, eawait) != (rmw, awaiting) {
                    g.set_read_flags(id, rmw, awaiting);
                }
                self.ev += 1;
                Consume::Got(Some(v))
            }
        }
    }

    fn consume_write(
        &mut self,
        g: &mut ExecutionGraph,
        loc: Loc,
        val: Value,
        mode: Mode,
        rmw: bool,
    ) -> Consume {
        let id = EventId::new(self.thread, self.ev as u32);
        if self.ev >= g.thread_len(self.thread) {
            return Consume::Missing(PendingOp::Write { loc, val, mode, rmw });
        }
        let found = match &g.event(id).kind {
            EventKind::Write { loc: l, val: v, mode: m, rmw: r } => Some((*l, *v, *m, *r)),
            _ => None,
        };
        match found {
            Some((l, v, m, r))
                if l == loc && v == val && r == rmw && (m == mode || self.adopt_modes) =>
            {
                if m != mode {
                    g.set_event_mode(id, mode);
                }
                self.ev += 1;
                Consume::Got(None)
            }
            _ => Consume::Mismatch(format!(
                "expected W({loc:#x},{val}) at {id}, found {}",
                g.event(id).kind
            )),
        }
    }

    fn consume_fence(&mut self, g: &mut ExecutionGraph, mode: Mode) -> Consume {
        let id = EventId::new(self.thread, self.ev as u32);
        if self.ev >= g.thread_len(self.thread) {
            return Consume::Missing(PendingOp::Fence { mode });
        }
        let found = match &g.event(id).kind {
            EventKind::Fence { mode: m } => Some(*m),
            _ => None,
        };
        match found {
            Some(m) if m == mode || self.adopt_modes => {
                if m != mode {
                    g.set_event_mode(id, mode);
                }
                self.ev += 1;
                Consume::Got(None)
            }
            _ => Consume::Mismatch(format!(
                "expected F{mode} at {id}, found {}",
                g.event(id).kind
            )),
        }
    }

    fn run(&mut self, g: &mut ExecutionGraph) -> ThreadStatus {
        let code: &'p [Instr] = self.prog.thread_code(self.thread);
        loop {
            if self.pc >= code.len() {
                if self.ev != g.thread_len(self.thread) {
                    return ThreadStatus::Fault(format!(
                        "thread {} terminated at pc {} but graph has {} extra events",
                        self.thread,
                        self.pc,
                        g.thread_len(self.thread) - self.ev
                    ));
                }
                return ThreadStatus::Finished;
            }
            self.steps += 1;
            if self.steps > self.budget {
                return ThreadStatus::Fault(format!(
                    "thread {} exceeded the step budget of {} — non-await loop? \
                     (Bounded-Length principle, paper §1.2; mark polling loops \
                     with await instructions)",
                    self.thread, self.budget
                ));
            }
            match &code[self.pc] {
                Instr::Load { dst, addr, mode } => {
                    let loc = self.addr(*addr);
                    let m = self.prog.mode(*mode);
                    match self.consume_read(g, loc, m, ReadDesc::Plain, None) {
                        Consume::Got(Some(v)) => {
                            self.regs[dst.0 as usize] = v;
                            self.pc += 1;
                        }
                        Consume::Got(None) | Consume::Pending => unreachable!(),
                        Consume::Missing(op) => return ThreadStatus::Ready(op),
                        Consume::Mismatch(m) => return ThreadStatus::Fault(m),
                    }
                }
                Instr::Store { addr, src, mode } => {
                    let loc = self.addr(*addr);
                    let val = self.operand(*src);
                    let m = self.prog.mode(*mode);
                    match self.consume_write(g, loc, val, m, false) {
                        Consume::Got(_) => self.pc += 1,
                        Consume::Missing(op) => return ThreadStatus::Ready(op),
                        Consume::Mismatch(m) => return ThreadStatus::Fault(m),
                        Consume::Pending => unreachable!(),
                    }
                }
                Instr::Rmw { dst, addr, op, operand, mode } => {
                    let loc = self.addr(*addr);
                    let m = self.prog.mode(*mode);
                    let desc = ReadDesc::Rmw { op: *op, operand: self.operand(*operand) };
                    match self.consume_read(g, loc, m, desc, None) {
                        Consume::Got(Some(v)) => {
                            self.regs[dst.0 as usize] = v;
                            let new = desc.write_on(v).expect("rmw always writes");
                            match self.consume_write(g, loc, new, m, true) {
                                Consume::Got(_) => self.pc += 1,
                                Consume::Missing(op) => return ThreadStatus::Ready(op),
                                Consume::Mismatch(m) => return ThreadStatus::Fault(m),
                                Consume::Pending => unreachable!(),
                            }
                        }
                        Consume::Got(None) | Consume::Pending => unreachable!(),
                        Consume::Missing(op) => return ThreadStatus::Ready(op),
                        Consume::Mismatch(m) => return ThreadStatus::Fault(m),
                    }
                }
                Instr::Cas { dst, addr, expected, new, mode } => {
                    let loc = self.addr(*addr);
                    let m = self.prog.mode(*mode);
                    let desc = ReadDesc::Cas {
                        expected: self.operand(*expected),
                        new: self.operand(*new),
                    };
                    match self.consume_read(g, loc, m, desc, None) {
                        Consume::Got(Some(v)) => {
                            self.regs[dst.0 as usize] = v;
                            if let Some(nv) = desc.write_on(v) {
                                match self.consume_write(g, loc, nv, m, true) {
                                    Consume::Got(_) => self.pc += 1,
                                    Consume::Missing(op) => return ThreadStatus::Ready(op),
                                    Consume::Mismatch(m) => return ThreadStatus::Fault(m),
                                    Consume::Pending => unreachable!(),
                                }
                            } else {
                                self.pc += 1;
                            }
                        }
                        Consume::Got(None) | Consume::Pending => unreachable!(),
                        Consume::Missing(op) => return ThreadStatus::Ready(op),
                        Consume::Mismatch(m) => return ThreadStatus::Fault(m),
                    }
                }
                Instr::Fence { mode } => {
                    let m = self.prog.mode(*mode);
                    if m == Mode::Rlx {
                        self.pc += 1; // relaxed fences are no-ops
                        continue;
                    }
                    match self.consume_fence(g, m) {
                        Consume::Got(_) => self.pc += 1,
                        Consume::Missing(op) => return ThreadStatus::Ready(op),
                        Consume::Mismatch(m) => return ThreadStatus::Fault(m),
                        Consume::Pending => unreachable!(),
                    }
                }
                Instr::AwaitLoad { dst, addr, until, mode } => {
                    let exit = self.test(until);
                    let desc = ReadDesc::AwaitLoad { exit };
                    match self.run_await(g, *addr, *mode, desc) {
                        AwaitStep::Exited(v) => {
                            self.regs[dst.0 as usize] = v;
                            self.pc += 1;
                        }
                        AwaitStep::Status(s) => return s,
                    }
                }
                Instr::AwaitRmw { dst, addr, until, op, operand, mode } => {
                    let exit = self.test(until);
                    let desc =
                        ReadDesc::AwaitRmw { exit, op: *op, operand: self.operand(*operand) };
                    match self.run_await(g, *addr, *mode, desc) {
                        AwaitStep::Exited(v) => {
                            self.regs[dst.0 as usize] = v;
                            self.pc += 1;
                        }
                        AwaitStep::Status(s) => return s,
                    }
                }
                Instr::AwaitCas { dst, addr, expected, new, mode } => {
                    let desc = ReadDesc::AwaitCas {
                        expected: self.operand(*expected),
                        new: self.operand(*new),
                    };
                    match self.run_await(g, *addr, *mode, desc) {
                        AwaitStep::Exited(v) => {
                            self.regs[dst.0 as usize] = v;
                            self.pc += 1;
                        }
                        AwaitStep::Status(s) => return s,
                    }
                }
                Instr::Mov { dst, src } => {
                    self.regs[dst.0 as usize] = self.operand(*src);
                    self.pc += 1;
                }
                Instr::Op { dst, op, a, b } => {
                    self.regs[dst.0 as usize] = op.apply(self.operand(*a), self.operand(*b));
                    self.pc += 1;
                }
                Instr::Jmp { target } => self.pc = *target,
                Instr::JmpIf { src, test, target } => {
                    let t = self.test(test);
                    if t.eval(self.operand(*src)) {
                        self.pc = *target;
                    } else {
                        self.pc += 1;
                    }
                }
                Instr::Assert { src, test, msg } => {
                    let t = self.test(test);
                    if t.eval(self.operand(*src)) {
                        self.pc += 1;
                        continue;
                    }
                    // Failed assertion: an error event.
                    let id = EventId::new(self.thread, self.ev as u32);
                    if self.ev >= g.thread_len(self.thread) {
                        return ThreadStatus::Ready(PendingOp::Error { msg: msg.clone() });
                    }
                    match &g.event(id).kind {
                        EventKind::Error { .. } => return ThreadStatus::Errored,
                        k => {
                            return ThreadStatus::Fault(format!(
                                "expected error event at {id}, found {k}"
                            ))
                        }
                    }
                }
                Instr::Nop => self.pc += 1,
            }
        }
    }

    /// Execute one await instruction: consume polling reads until the exit
    /// test holds, the event is missing, or the thread blocks.
    fn run_await(
        &mut self,
        g: &mut ExecutionGraph,
        addr: Addr,
        mode: crate::insn::ModeRef,
        desc: ReadDesc,
    ) -> AwaitStep {
        let loc = self.addr(addr);
        let m = self.prog.mode(mode);
        let mut prev_rf: Option<RfSource> = None;
        loop {
            let id = EventId::new(self.thread, self.ev as u32);
            match self.consume_read(g, loc, m, desc, prev_rf) {
                Consume::Missing(op) => return AwaitStep::Status(ThreadStatus::Ready(op)),
                Consume::Mismatch(m) => return AwaitStep::Status(ThreadStatus::Fault(m)),
                Consume::Pending => {
                    return AwaitStep::Status(ThreadStatus::Blocked(BlockedAwait {
                        read: id,
                        loc,
                        mode: m,
                        desc,
                        prev_rf,
                    }))
                }
                Consume::Got(Some(v)) => {
                    if desc.exits(v) {
                        if let Some(new) = desc.write_on(v) {
                            match self.consume_write(g, loc, new, m, true) {
                                Consume::Got(_) => {}
                                Consume::Missing(op) => {
                                    return AwaitStep::Status(ThreadStatus::Ready(op))
                                }
                                Consume::Mismatch(m) => {
                                    return AwaitStep::Status(ThreadStatus::Fault(m))
                                }
                                Consume::Pending => unreachable!(),
                            }
                        }
                        return AwaitStep::Exited(v);
                    }
                    // Failed iteration.
                    if !desc.bounded_effect_ok(v) {
                        return AwaitStep::Status(ThreadStatus::Fault(format!(
                            "await_rmw at {id}: failed iteration would write a \
                             different value (Bounded-Effect principle, paper Def. 3)"
                        )));
                    }
                    let rf = g.rf(id);
                    if prev_rf == Some(rf) {
                        self.wasteful = true; // W(G): same write twice in a row
                    }
                    prev_rf = Some(rf);
                    self.steps += 1;
                    if self.steps > self.budget {
                        return AwaitStep::Status(ThreadStatus::Fault(
                            "await iterations exceeded step budget".into(),
                        ));
                    }
                }
                Consume::Got(None) => unreachable!(),
            }
        }
    }
}

enum AwaitStep {
    Exited(Value),
    Status(ThreadStatus),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::insn::Reg;

    const X: Loc = 0x10;

    /// Drive a single-threaded program to completion by adding each Ready
    /// event with the obvious rf/mo choice (sequential semantics).
    fn run_sequential(prog: &Program) -> ExecutionGraph {
        let mut g = ExecutionGraph::new(prog.num_threads(), prog.init().clone());
        loop {
            let out = replay(prog, &mut g);
            if let Some(f) = out.fault() {
                panic!("fault: {f}");
            }
            let Some(t) = out.ready_threads().next() else { return g };
            match &out.threads[t as usize] {
                ThreadStatus::Ready(PendingOp::Read { loc, mode, desc, .. }) => {
                    // Sequential: read the mo-maximal write.
                    let src = g
                        .mo(*loc)
                        .last()
                        .copied()
                        .map(RfSource::Write)
                        .unwrap_or(RfSource::Write(EventId::Init(*loc)));
                    let v = match src {
                        RfSource::Write(w) => g.write_value(w),
                        RfSource::Bottom => unreachable!(),
                    };
                    g.push_event(
                        t,
                        EventKind::Read {
                            loc: *loc,
                            mode: *mode,
                            rf: src,
                            rmw: desc.write_on(v).is_some(),
                            awaiting: desc.is_await(),
                        },
                    );
                }
                ThreadStatus::Ready(PendingOp::Write { loc, val, mode, rmw }) => {
                    let id = g.push_event(
                        t,
                        EventKind::Write { loc: *loc, val: *val, mode: *mode, rmw: *rmw },
                    );
                    let pos = g.mo(*loc).len();
                    g.insert_mo(*loc, id, pos);
                }
                ThreadStatus::Ready(PendingOp::Fence { mode }) => {
                    g.push_event(t, EventKind::Fence { mode: *mode });
                }
                ThreadStatus::Ready(PendingOp::Error { msg }) => {
                    g.push_event(t, EventKind::Error { msg: msg.clone() });
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn straight_line_store_load() {
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            t.store(X, 7u64, vsync_graph::Mode::Rlx);
            t.load(Reg(0), X, vsync_graph::Mode::Rlx);
            t.assert_eq(Reg(0), 7u64, "read back");
        });
        let prog = pb.build().unwrap();
        let g = run_sequential(&prog);
        assert!(g.error().is_none());
        assert_eq!(g.final_state().get(&X), Some(&7));
    }

    #[test]
    fn failed_assert_generates_error_event() {
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            t.load(Reg(0), X, vsync_graph::Mode::Rlx);
            t.assert_eq(Reg(0), 1u64, "x must be 1");
        });
        let prog = pb.build().unwrap();
        let g = run_sequential(&prog);
        assert_eq!(g.error().map(|(_, m)| m.to_owned()), Some("x must be 1".into()));
    }

    #[test]
    fn rmw_reads_then_writes() {
        let mut pb = ProgramBuilder::new("p");
        pb.init(X, 5);
        pb.thread(|t| {
            t.fetch_add(Reg(0), X, 3u64, vsync_graph::Mode::Rlx);
            t.assert_eq(Reg(0), 5u64, "old value");
        });
        let prog = pb.build().unwrap();
        let g = run_sequential(&prog);
        assert!(g.error().is_none());
        assert_eq!(g.final_state().get(&X), Some(&8));
        // Two events: rmw read + rmw write.
        assert_eq!(g.thread_len(0), 2);
    }

    #[test]
    fn cas_failure_has_no_write_event() {
        let mut pb = ProgramBuilder::new("p");
        pb.init(X, 5);
        pb.thread(|t| {
            t.cas(Reg(0), X, 9u64, 1u64, vsync_graph::Mode::Rlx);
            t.assert_eq(Reg(0), 5u64, "old value returned");
        });
        let prog = pb.build().unwrap();
        let g = run_sequential(&prog);
        assert!(g.error().is_none());
        assert_eq!(g.thread_len(0), 1); // read only
        assert_eq!(g.final_state().get(&X), Some(&5));
    }

    #[test]
    fn relaxed_fence_emits_no_event() {
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            t.fence(vsync_graph::Mode::Rlx);
            t.fence(vsync_graph::Mode::Sc);
        });
        let prog = pb.build().unwrap();
        let g = run_sequential(&prog);
        assert_eq!(g.thread_len(0), 1); // only the sc fence
    }

    #[test]
    fn await_exits_immediately_when_condition_holds() {
        let mut pb = ProgramBuilder::new("p");
        pb.init(X, 3);
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 3u64, vsync_graph::Mode::Acq);
            t.assert_eq(Reg(0), 3u64, "polled value");
        });
        let prog = pb.build().unwrap();
        let g = run_sequential(&prog);
        assert!(g.error().is_none());
        assert_eq!(g.thread_len(0), 1);
    }

    #[test]
    fn await_rmw_success_emits_pair() {
        // await_while(xchg(x,1) != 0) with x initially 0: immediate success.
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            t.await_rmw(Reg(0), X, Test::eq(0u64), RmwOp::Xchg, 1u64, vsync_graph::Mode::Acq);
        });
        let prog = pb.build().unwrap();
        let g = run_sequential(&prog);
        assert_eq!(g.thread_len(0), 2);
        assert_eq!(g.final_state().get(&X), Some(&1));
    }

    #[test]
    fn bounded_effect_violation_faults() {
        // A failed iteration that would fetch_add(1): not value-preserving.
        let mut pb = ProgramBuilder::new("p");
        pb.init(X, 5);
        pb.thread(|t| {
            // until x == 0, op add 1: reading 5 fails the test and add 1 ≠ id.
            t.await_rmw(Reg(0), X, Test::eq(0u64), RmwOp::Add, 1u64, vsync_graph::Mode::Rlx);
        });
        let prog = pb.build().unwrap();
        let mut g = ExecutionGraph::new(1, prog.init().clone());
        g.push_event(
            0,
            EventKind::Read {
                loc: X,
                mode: vsync_graph::Mode::Rlx,
                rf: RfSource::Write(EventId::Init(X)),
                rmw: false,
                awaiting: true,
            },
        );
        let out = replay(&prog, &mut g);
        assert!(out.fault().unwrap().contains("Bounded-Effect"));
    }

    #[test]
    fn wasteful_detected_on_repeated_source() {
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, vsync_graph::Mode::Rlx);
        });
        let prog = pb.build().unwrap();
        let mut g = ExecutionGraph::new(1, prog.init().clone());
        for _ in 0..2 {
            g.push_event(
                0,
                EventKind::Read {
                    loc: X,
                    mode: vsync_graph::Mode::Rlx,
                    rf: RfSource::Write(EventId::Init(X)),
                    rmw: false,
                    awaiting: true,
                },
            );
        }
        let out = replay(&prog, &mut g);
        assert!(out.wasteful, "two consecutive reads from init are wasteful");
    }

    #[test]
    fn blocked_await_reports_prev_rf() {
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            t.await_eq(Reg(0), X, 1u64, vsync_graph::Mode::Rlx);
        });
        let prog = pb.build().unwrap();
        let mut g = ExecutionGraph::new(1, prog.init().clone());
        g.push_event(
            0,
            EventKind::Read {
                loc: X,
                mode: vsync_graph::Mode::Rlx,
                rf: RfSource::Write(EventId::Init(X)),
                rmw: false,
                awaiting: true,
            },
        );
        g.push_event(
            0,
            EventKind::Read {
                loc: X,
                mode: vsync_graph::Mode::Rlx,
                rf: RfSource::Bottom,
                rmw: false,
                awaiting: true,
            },
        );
        let out = replay(&prog, &mut g);
        match &out.threads[0] {
            ThreadStatus::Blocked(b) => {
                assert_eq!(b.prev_rf, Some(RfSource::Write(EventId::Init(X))));
                assert_eq!(b.loc, X);
            }
            s => panic!("expected blocked, got {s:?}"),
        }
    }

    #[test]
    fn infinite_local_loop_exhausts_budget() {
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            let head = t.here_label();
            t.jmp(head);
        });
        let prog = pb.build().unwrap();
        let mut g = ExecutionGraph::new(1, prog.init().clone());
        let out = replay_with_budget(&prog, &mut g, 1000);
        assert!(out.fault().unwrap().contains("Bounded-Length"));
    }

    #[test]
    fn control_flow_branches() {
        let mut pb = ProgramBuilder::new("p");
        pb.init(X, 2);
        pb.thread(|t| {
            let else_ = t.label();
            let end = t.label();
            t.load(Reg(0), X, vsync_graph::Mode::Rlx);
            t.jmp_if(Reg(0), Test::ne(1u64), else_);
            t.mov(Reg(1), 100u64);
            t.jmp(end);
            t.bind(else_);
            t.mov(Reg(1), 200u64);
            t.bind(end);
            t.assert_eq(Reg(1), 200u64, "took else branch");
        });
        let prog = pb.build().unwrap();
        let g = run_sequential(&prog);
        assert!(g.error().is_none());
    }
}
