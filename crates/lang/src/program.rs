//! Programs: per-thread instruction sequences plus the barrier-site table.

use std::collections::BTreeMap;
use std::fmt;

use vsync_graph::{Loc, Mode, ThreadPartition, Value};

use crate::insn::{Instr, ModeRef, Test, NUM_REGS};

/// The syntactic category of a barrier site, which determines the set of
/// modes it may take and the relaxation order used by the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A load (or the polling read of an `await_load`): `rlx < acq < sc`.
    Load,
    /// A store: `rlx < rel < sc`.
    Store,
    /// A read-modify-write: `rlx < acq, rel < acq_rel < sc`.
    Rmw,
    /// A fence: `rlx (no-op) < acq, rel < acq_rel < sc`.
    Fence,
}

impl SiteKind {
    /// All modes a site of this kind may legally take, weakest first.
    pub fn valid_modes(self) -> &'static [Mode] {
        match self {
            SiteKind::Load => &[Mode::Rlx, Mode::Acq, Mode::Sc],
            SiteKind::Store => &[Mode::Rlx, Mode::Rel, Mode::Sc],
            SiteKind::Rmw | SiteKind::Fence => {
                &[Mode::Rlx, Mode::Acq, Mode::Rel, Mode::AcqRel, Mode::Sc]
            }
        }
    }

    /// The strongest mode of this kind.
    pub fn strongest(self) -> Mode {
        Mode::Sc
    }

    /// Modes strictly weaker than `m`, weakest first, that a site of this
    /// kind may be relaxed to.
    ///
    /// The mode lattice is partial for RMWs and fences (`Acq` and `Rel` are
    /// incomparable); "weaker" means weaker-or-incomparable-but-cheaper is
    /// *not* assumed — only genuine lattice descents are returned.
    pub fn weaker_modes(self, m: Mode) -> Vec<Mode> {
        let weaker = |c: Mode| match (c, m) {
            (a, b) if a == b => false,
            (Mode::Rlx, _) => true,
            (_, Mode::Sc) => true,
            (Mode::Acq, Mode::AcqRel) | (Mode::Rel, Mode::AcqRel) => true,
            _ => false,
        };
        self.valid_modes().iter().copied().filter(|&c| weaker(c)).collect()
    }
}

/// A barrier site: one memory-ordering annotation in the program text.
///
/// The optimizer's unit of work (paper §"Optimization results", Fig. 20):
/// each site can be independently relaxed as long as the program still
/// verifies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierSite {
    /// Human-readable name (e.g. `"lock.cmpxchg"`), used in reports.
    pub name: String,
    /// Syntactic category.
    pub kind: SiteKind,
    /// Current mode.
    pub mode: Mode,
    /// May the optimizer change this site?
    pub relaxable: bool,
    /// Thread the site belongs to.
    pub thread: u32,
    /// Instruction index within the thread.
    pub pc: usize,
}

/// A predicate over the final memory state of complete executions
/// (evaluated on the `mo`-maximal value of `loc`).
///
/// This is how the generic client checks global outcomes, e.g. that no
/// counter increment was lost (paper §3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinalCheck {
    /// Checked location.
    pub loc: Loc,
    /// Predicate on the final value.
    pub test: Test,
    /// Message reported when the check fails.
    pub msg: String,
}

/// Errors detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A jump target is outside the thread's code.
    BadJumpTarget {
        /// Offending thread.
        thread: u32,
        /// Offending instruction index.
        pc: usize,
        /// The invalid target.
        target: usize,
    },
    /// A register index is out of range.
    BadRegister {
        /// Offending thread.
        thread: u32,
        /// Offending instruction index.
        pc: usize,
    },
    /// A mode reference points outside the site table.
    BadModeRef {
        /// Offending thread.
        thread: u32,
        /// Offending instruction index.
        pc: usize,
    },
    /// A site's mode is invalid for its kind (e.g. a `rel` load).
    InvalidMode {
        /// Site name.
        site: String,
        /// The invalid mode.
        mode: Mode,
    },
    /// A final-state check uses a register operand. Final checks are
    /// evaluated on the final memory state alone — there is no thread
    /// whose register file could supply a value — so both the comparison
    /// operand and the optional mask must be immediates.
    FinalCheckOperand {
        /// The failing check's message/label.
        check: String,
    },
    /// An `Await` reads a register that no instruction in its thread ever
    /// writes. Such a register holds its zero initial value on every
    /// iteration, so the exit condition (or RMW/CAS operand) cannot depend
    /// on prior computation — almost certainly a program-construction bug.
    /// It is rejected here instead of surfacing as a confusing verdict at
    /// explore time.
    AwaitOperandUnwritten {
        /// Offending thread.
        thread: u32,
        /// Offending instruction index.
        pc: usize,
        /// The never-written register the await reads.
        reg: u8,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BadJumpTarget { thread, pc, target } => {
                write!(f, "thread {thread} pc {pc}: jump target {target} out of range")
            }
            ProgramError::BadRegister { thread, pc } => {
                write!(f, "thread {thread} pc {pc}: register out of range")
            }
            ProgramError::BadModeRef { thread, pc } => {
                write!(f, "thread {thread} pc {pc}: dangling mode reference")
            }
            ProgramError::InvalidMode { site, mode } => {
                write!(f, "site {site}: mode {mode} invalid for its kind")
            }
            ProgramError::FinalCheckOperand { check } => {
                write!(
                    f,
                    "final-state check '{check}' uses a register operand; \
                     final checks must use immediate operands"
                )
            }
            ProgramError::AwaitOperandUnwritten { thread, pc, reg } => {
                write!(
                    f,
                    "thread {thread} pc {pc}: await reads register r{reg}, \
                     which no instruction in this thread writes"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// Counts of non-relaxed barrier modes, as reported in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BarrierSummary {
    /// Number of acquire sites.
    pub acq: usize,
    /// Number of release sites.
    pub rel: usize,
    /// Number of acquire+release sites.
    pub acq_rel: usize,
    /// Number of SC sites (accesses or fences).
    pub sc: usize,
    /// Number of relaxed sites.
    pub rlx: usize,
}

impl fmt::Display for BarrierSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} acq, {} rel, {} acq_rel, {} sc ({} rlx)",
            self.acq, self.rel, self.acq_rel, self.sc, self.rlx
        )
    }
}

/// A complete concurrent program: one instruction sequence per thread, a
/// barrier-site table, initial memory values, and final-state checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    threads: Vec<Vec<Instr>>,
    sites: Vec<BarrierSite>,
    init: BTreeMap<Loc, Value>,
    final_checks: Vec<FinalCheck>,
    /// Declared thread-symmetry partition (see
    /// [`Program::declare_symmetry`]); `None` = no declaration, the
    /// detected partition is used as-is.
    declared_symmetry: Option<ThreadPartition>,
}

impl Program {
    /// Assemble a program from parts. Prefer [`crate::ProgramBuilder`].
    pub fn from_parts(
        name: String,
        threads: Vec<Vec<Instr>>,
        sites: Vec<BarrierSite>,
        init: BTreeMap<Loc, Value>,
        final_checks: Vec<FinalCheck>,
    ) -> Self {
        Program { name, threads, sites, init, final_checks, declared_symmetry: None }
    }

    /// The program's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The code of one thread.
    pub fn thread_code(&self, thread: u32) -> &[Instr] {
        &self.threads[thread as usize]
    }

    /// The initial memory values.
    pub fn init(&self) -> &BTreeMap<Loc, Value> {
        &self.init
    }

    /// The final-state checks.
    pub fn final_checks(&self) -> &[FinalCheck] {
        &self.final_checks
    }

    /// The barrier-site table.
    pub fn sites(&self) -> &[BarrierSite] {
        &self.sites
    }

    /// Resolve a mode reference.
    pub fn mode(&self, r: ModeRef) -> Mode {
        self.sites[r.0 as usize].mode
    }

    /// Set the mode of a site (used by the optimizer).
    ///
    /// # Panics
    ///
    /// Panics if the mode is invalid for the site's kind.
    pub fn set_mode(&mut self, r: ModeRef, mode: Mode) {
        let site = &mut self.sites[r.0 as usize];
        assert!(
            site.kind.valid_modes().contains(&mode),
            "mode {mode} invalid for site {} of kind {:?}",
            site.name,
            site.kind
        );
        site.mode = mode;
    }

    /// A copy with every relaxable site raised to SC — the paper's
    /// "sc-only" baseline variant.
    pub fn with_all_sc(&self) -> Program {
        let mut p = self.clone();
        for s in &mut p.sites {
            if s.relaxable {
                s.mode = Mode::Sc;
            }
        }
        p.name = format!("{}-seq", self.name);
        p
    }

    /// Count the barrier modes over relaxable sites (Table 1 format).
    pub fn barrier_summary(&self) -> BarrierSummary {
        let mut s = BarrierSummary::default();
        for site in self.sites.iter().filter(|s| s.relaxable) {
            match site.mode {
                Mode::Rlx => s.rlx += 1,
                Mode::Acq => s.acq += 1,
                Mode::Rel => s.rel += 1,
                Mode::AcqRel => s.acq_rel += 1,
                Mode::Sc => s.sc += 1,
            }
        }
        s
    }

    /// Indices of the relaxable sites, in site-table order — the
    /// optimizer's work list.
    pub fn relaxable_sites(&self) -> Vec<u32> {
        (0..self.sites.len() as u32).filter(|&i| self.sites[i as usize].relaxable).collect()
    }

    /// Snapshot of every site's current mode, in site-table order.
    ///
    /// Together with [`Program::apply_patch`] this is the optimizer's
    /// currency: a barrier assignment is the mode vector, and a candidate
    /// is the baseline plus a sparse patch.
    pub fn site_modes(&self) -> Vec<Mode> {
        self.sites.iter().map(|s| s.mode).collect()
    }

    /// Apply a sparse mode patch: each `(site index, mode)` pair overwrites
    /// one site's mode.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or a mode is invalid for the
    /// site's kind (same contract as [`Program::set_mode`]).
    pub fn apply_patch(&mut self, patch: &[(u32, Mode)]) {
        for &(i, m) in patch {
            self.set_mode(ModeRef(i), m);
        }
    }

    /// A copy of the program with a sparse mode patch applied — the
    /// optimizer's candidate constructor.
    #[must_use]
    pub fn with_patch(&self, patch: &[(u32, Mode)]) -> Program {
        let mut p = self.clone();
        p.apply_patch(patch);
        p
    }

    /// Copy the modes of `other`'s sites onto this program's sites with the
    /// same names (sites missing on either side are left untouched).
    ///
    /// This lets a barrier assignment found by the optimizer on one client
    /// program be applied to another scenario of the same lock: named sites
    /// are the lock's source-level annotations, shared across programs.
    pub fn copy_modes_by_name(&mut self, other: &Program) {
        for i in 0..self.sites.len() {
            let name = self.sites[i].name.clone();
            if let Some(src) = other.sites.iter().find(|s| s.name == name) {
                if self.sites[i].kind == src.kind {
                    self.sites[i].mode = src.mode;
                }
            }
        }
    }

    /// Declare a thread-symmetry partition: a commitment that threads in
    /// the same class run the same template and may be treated as
    /// interchangeable by symmetry-aware consumers.
    ///
    /// Declarations are advisory, never trusted blindly:
    /// [`Program::symmetry_partition`] always intersects them with the
    /// partition recomputed from the current (mode-resolved) thread code,
    /// so a stale declaration — e.g. after the optimizer relaxed a
    /// per-thread site — can only *lose* symmetry, never unsoundly merge
    /// threads whose code has diverged. [`crate::ProgramBuilder::build`]
    /// emits the detected partition automatically.
    ///
    /// # Panics
    ///
    /// Panics if the partition covers a different thread count.
    pub fn declare_symmetry(&mut self, partition: ThreadPartition) {
        assert_eq!(
            partition.num_threads(),
            self.threads.len(),
            "symmetry partition must cover all {} threads",
            self.threads.len()
        );
        self.declared_symmetry = Some(partition);
    }

    /// The declared thread-symmetry partition, if any.
    pub fn declared_symmetry(&self) -> Option<&ThreadPartition> {
        self.declared_symmetry.as_ref()
    }

    /// Drop the declared partition ([`Program::symmetry_partition`] then
    /// uses pure detection).
    pub fn clear_symmetry(&mut self) {
        self.declared_symmetry = None;
    }

    /// The thread-symmetry partition of the program as it stands *now*:
    /// threads are in the same class iff their instruction sequences are
    /// identical once every barrier-site reference is resolved to its
    /// current [`Mode`], intersected with the declared partition (if any).
    ///
    /// Recomputing from the resolved code on every call keeps the
    /// partition sound across mode mutations ([`Program::set_mode`],
    /// [`Program::apply_patch`], [`Program::with_all_sc`]): once two
    /// template-sharing threads' modes diverge, they stop being merged.
    pub fn symmetry_partition(&self) -> ThreadPartition {
        let detected = self.detect_symmetry();
        match &self.declared_symmetry {
            Some(declared) => detected.refine(declared),
            None => detected,
        }
    }

    /// Equality classes of mode-resolved thread code.
    fn detect_symmetry(&self) -> ThreadPartition {
        let n = self.threads.len();
        let mut class: Vec<u32> = (0..n as u32).collect();
        for t in 1..n {
            for s in 0..t {
                if class[s] == s as u32 && self.threads_resolved_equal(s, t) {
                    class[t] = s as u32;
                    break;
                }
            }
        }
        ThreadPartition::from_class_ids(&class)
    }

    /// Are two threads' instruction sequences identical with barrier-site
    /// references resolved to their current modes? (Site *identity* is
    /// deliberately ignored: auto-named per-thread sites with equal modes
    /// still compare equal — that is exactly the template-instantiation
    /// pattern of the generic lock client.)
    fn threads_resolved_equal(&self, a: usize, b: usize) -> bool {
        let (ca, cb) = (&self.threads[a], &self.threads[b]);
        ca.len() == cb.len()
            && ca.iter().zip(cb).all(|(ia, ib)| match (ia.mode_ref(), ib.mode_ref()) {
                (None, None) => ia == ib,
                (Some(ma), Some(mb)) => {
                    self.mode(ma) == self.mode(mb) && {
                        // Compare the rest structurally by pinning both
                        // site references to the same sentinel.
                        let (mut na, mut nb) = (ia.clone(), ib.clone());
                        na.set_mode_ref(ModeRef(0));
                        nb.set_mode_ref(ModeRef(0));
                        na == nb
                    }
                }
                _ => false,
            })
    }

    /// Validate structural well-formedness (jump targets, registers, mode
    /// references, mode/kind compatibility).
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        use crate::insn::{Addr, Operand, Reg};
        let check_reg = |r: Reg| (r.0 as usize) < NUM_REGS;
        let check_op = |o: &Operand| match o {
            Operand::Reg(r) => check_reg(*r),
            Operand::Imm(_) => true,
        };
        let check_addr = |a: &Addr| match a {
            Addr::Imm(_) => true,
            Addr::Reg(r) | Addr::RegOff(r, _) => check_reg(*r),
        };
        let check_test =
            |t: &Test| t.mask.as_ref().map(check_op).unwrap_or(true) && check_op(&t.rhs);
        for (t, code) in self.threads.iter().enumerate() {
            for (pc, i) in code.iter().enumerate() {
                let bad_reg = ProgramError::BadRegister { thread: t as u32, pc };
                let ok = match i {
                    Instr::Load { dst, addr, .. } => check_reg(*dst) && check_addr(addr),
                    Instr::Store { addr, src, .. } => check_addr(addr) && check_op(src),
                    Instr::Rmw { dst, addr, operand, .. } => {
                        check_reg(*dst) && check_addr(addr) && check_op(operand)
                    }
                    Instr::Cas { dst, addr, expected, new, .. }
                    | Instr::AwaitCas { dst, addr, expected, new, .. } => {
                        check_reg(*dst) && check_addr(addr) && check_op(expected) && check_op(new)
                    }
                    Instr::AwaitLoad { dst, addr, until, .. } => {
                        check_reg(*dst) && check_addr(addr) && check_test(until)
                    }
                    Instr::AwaitRmw { dst, addr, until, operand, .. } => {
                        check_reg(*dst) && check_addr(addr) && check_test(until) && check_op(operand)
                    }
                    Instr::Mov { dst, src } => check_reg(*dst) && check_op(src),
                    Instr::Op { dst, a, b, .. } => check_reg(*dst) && check_op(a) && check_op(b),
                    Instr::JmpIf { src, test, .. } => check_op(src) && check_test(test),
                    Instr::Assert { src, test, .. } => check_op(src) && check_test(test),
                    Instr::Jmp { .. } | Instr::Fence { .. } | Instr::Nop => true,
                };
                if !ok {
                    return Err(bad_reg);
                }
                if let Instr::Jmp { target } | Instr::JmpIf { target, .. } = i {
                    if *target > code.len() {
                        return Err(ProgramError::BadJumpTarget {
                            thread: t as u32,
                            pc,
                            target: *target,
                        });
                    }
                }
                if let Some(m) = i.mode_ref() {
                    if m.0 as usize >= self.sites.len() {
                        return Err(ProgramError::BadModeRef { thread: t as u32, pc });
                    }
                }
            }
        }
        // Awaits must be computable: every register an await reads (exit
        // condition, RMW/CAS operands, register-indirect address) has to be
        // written by some instruction of the same thread. The check is
        // position-independent on purpose — with jumps, a register written
        // only after the await can still feed it on a later loop iteration.
        for (t, code) in self.threads.iter().enumerate() {
            let mut written = [false; NUM_REGS];
            for i in code {
                let dst = match i {
                    Instr::Load { dst, .. }
                    | Instr::Rmw { dst, .. }
                    | Instr::Cas { dst, .. }
                    | Instr::AwaitLoad { dst, .. }
                    | Instr::AwaitRmw { dst, .. }
                    | Instr::AwaitCas { dst, .. }
                    | Instr::Mov { dst, .. }
                    | Instr::Op { dst, .. } => Some(*dst),
                    _ => None,
                };
                if let Some(Reg(r)) = dst {
                    written[r as usize] = true;
                }
            }
            let op_reg = |o: &Operand| match o {
                Operand::Reg(r) => Some(*r),
                Operand::Imm(_) => None,
            };
            let addr_reg = |a: &Addr| match a {
                Addr::Imm(_) => None,
                Addr::Reg(r) | Addr::RegOff(r, _) => Some(*r),
            };
            for (pc, i) in code.iter().enumerate() {
                let reads: Vec<Option<Reg>> = match i {
                    Instr::AwaitLoad { addr, until, .. } => vec![
                        addr_reg(addr),
                        op_reg(&until.rhs),
                        until.mask.as_ref().and_then(&op_reg),
                    ],
                    Instr::AwaitRmw { addr, until, operand, .. } => vec![
                        addr_reg(addr),
                        op_reg(&until.rhs),
                        until.mask.as_ref().and_then(&op_reg),
                        op_reg(operand),
                    ],
                    Instr::AwaitCas { addr, expected, new, .. } => {
                        vec![addr_reg(addr), op_reg(expected), op_reg(new)]
                    }
                    _ => vec![],
                };
                if let Some(r) = reads.into_iter().flatten().find(|r| !written[r.0 as usize]) {
                    return Err(ProgramError::AwaitOperandUnwritten {
                        thread: t as u32,
                        pc,
                        reg: r.0,
                    });
                }
            }
        }
        for s in &self.sites {
            if !s.kind.valid_modes().contains(&s.mode) {
                return Err(ProgramError::InvalidMode { site: s.name.clone(), mode: s.mode });
            }
        }
        // Final checks are evaluated without thread state, so register
        // operands are meaningless there (unlike in ordinary tests).
        for c in &self.final_checks {
            let imm = |o: &Operand| matches!(o, Operand::Imm(_));
            if !imm(&c.test.rhs) || c.test.mask.as_ref().map(|m| !imm(m)).unwrap_or(false) {
                return Err(ProgramError::FinalCheckOperand { check: c.msg.clone() });
            }
        }
        Ok(())
    }

    /// Render the program with its barrier assignment, one line per site,
    /// in the style of the paper's Fig. 20/21.
    pub fn render_barriers(&self) -> String {
        let mut out = String::new();
        for s in &self.sites {
            if s.relaxable {
                out.push_str(&format!("  {:<40} {}\n", s.name, s.mode));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Addr, Reg};

    fn one_site_program(mode: Mode, kind: SiteKind) -> Program {
        let site = BarrierSite {
            name: "s".into(),
            kind,
            mode,
            relaxable: true,
            thread: 0,
            pc: 0,
        };
        let instr = match kind {
            SiteKind::Load => Instr::Load { dst: Reg(0), addr: Addr::Imm(1), mode: ModeRef(0) },
            SiteKind::Store => {
                Instr::Store { addr: Addr::Imm(1), src: 1u64.into(), mode: ModeRef(0) }
            }
            SiteKind::Fence => Instr::Fence { mode: ModeRef(0) },
            SiteKind::Rmw => Instr::Rmw {
                dst: Reg(0),
                addr: Addr::Imm(1),
                op: crate::insn::RmwOp::Xchg,
                operand: 1u64.into(),
                mode: ModeRef(0),
            },
        };
        Program::from_parts("p".into(), vec![vec![instr]], vec![site], BTreeMap::new(), vec![])
    }

    #[test]
    fn weaker_modes_follow_lattice() {
        assert_eq!(SiteKind::Load.weaker_modes(Mode::Sc), vec![Mode::Rlx, Mode::Acq]);
        assert_eq!(SiteKind::Load.weaker_modes(Mode::Acq), vec![Mode::Rlx]);
        assert_eq!(SiteKind::Store.weaker_modes(Mode::Sc), vec![Mode::Rlx, Mode::Rel]);
        assert_eq!(
            SiteKind::Rmw.weaker_modes(Mode::Sc),
            vec![Mode::Rlx, Mode::Acq, Mode::Rel, Mode::AcqRel]
        );
        assert_eq!(SiteKind::Rmw.weaker_modes(Mode::AcqRel), vec![Mode::Rlx, Mode::Acq, Mode::Rel]);
        assert_eq!(SiteKind::Rmw.weaker_modes(Mode::Acq), vec![Mode::Rlx]);
        assert!(SiteKind::Fence.weaker_modes(Mode::Rlx).is_empty());
    }

    #[test]
    fn with_all_sc_raises_relaxable_sites() {
        let p = one_site_program(Mode::Rlx, SiteKind::Load);
        let seq = p.with_all_sc();
        assert_eq!(seq.mode(ModeRef(0)), Mode::Sc);
        assert_eq!(p.mode(ModeRef(0)), Mode::Rlx); // original untouched
        assert!(seq.name().ends_with("-seq"));
    }

    #[test]
    fn barrier_summary_counts() {
        let p = one_site_program(Mode::Acq, SiteKind::Load);
        let s = p.barrier_summary();
        assert_eq!((s.acq, s.rel, s.sc, s.rlx), (1, 0, 0, 0));
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(one_site_program(Mode::Acq, SiteKind::Load).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_mode_for_kind() {
        let p = one_site_program(Mode::Rel, SiteKind::Load);
        assert!(matches!(p.validate(), Err(ProgramError::InvalidMode { .. })));
    }

    #[test]
    fn validate_rejects_register_operands_in_final_checks() {
        use crate::insn::{Cmp, Operand, Test};
        let bad = |test: Test| {
            Program::from_parts(
                "p".into(),
                vec![vec![Instr::Nop]],
                vec![],
                BTreeMap::new(),
                vec![FinalCheck { loc: 1, test, msg: "bad".into() }],
            )
        };
        let reg_rhs = Test { mask: None, cmp: Cmp::Eq, rhs: Operand::Reg(Reg(0)) };
        let e = bad(reg_rhs).validate().unwrap_err();
        assert!(matches!(&e, ProgramError::FinalCheckOperand { check } if check == "bad"));
        assert!(e.to_string().contains("immediate operands"), "{e}");
        let reg_mask =
            Test { mask: Some(Operand::Reg(Reg(1))), cmp: Cmp::Eq, rhs: Operand::Imm(0) };
        assert!(matches!(bad(reg_mask).validate(), Err(ProgramError::FinalCheckOperand { .. })));
        let imm = Test { mask: Some(Operand::Imm(3)), cmp: Cmp::Eq, rhs: Operand::Imm(1) };
        assert!(bad(imm).validate().is_ok());
    }

    #[test]
    fn validate_rejects_await_reading_unwritten_register() {
        use crate::insn::{Operand, Test};
        // Thread 0 awaits until the location equals r7, but nothing ever
        // writes r7 — the exit condition silently compares against zero.
        let p = Program::from_parts(
            "p".into(),
            vec![vec![Instr::AwaitLoad {
                dst: Reg(0),
                addr: Addr::Imm(1),
                until: Test::eq(Operand::Reg(Reg(7))),
                mode: ModeRef(0),
            }]],
            vec![BarrierSite {
                name: "s".into(),
                kind: SiteKind::Load,
                mode: Mode::Acq,
                relaxable: true,
                thread: 0,
                pc: 0,
            }],
            BTreeMap::new(),
            vec![],
        );
        let e = p.validate().unwrap_err();
        assert_eq!(e, ProgramError::AwaitOperandUnwritten { thread: 0, pc: 0, reg: 7 });
        assert!(e.to_string().contains("r7"), "{e}");
        // Writing the register anywhere in the thread (even after the
        // await) satisfies the check.
        let code = vec![
            p.thread_code(0)[0].clone(),
            Instr::Mov { dst: Reg(7), src: Operand::Imm(1) },
        ];
        let ok =
            Program::from_parts("p".into(), vec![code], p.sites().to_vec(), BTreeMap::new(), vec![]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_jump() {
        let p = Program::from_parts(
            "p".into(),
            vec![vec![Instr::Jmp { target: 5 }]],
            vec![],
            BTreeMap::new(),
            vec![],
        );
        assert!(matches!(p.validate(), Err(ProgramError::BadJumpTarget { .. })));
    }

    #[test]
    fn symmetry_detection_resolves_modes_and_respects_declarations() {
        use vsync_graph::ThreadPartition;
        // Two threads, each with its *own* site but equal mode: symmetric.
        let site = |name: &str| BarrierSite {
            name: name.into(),
            kind: SiteKind::Load,
            mode: Mode::Acq,
            relaxable: true,
            thread: 0,
            pc: 0,
        };
        let load = |site: u32| Instr::Load { dst: Reg(0), addr: Addr::Imm(1), mode: ModeRef(site) };
        let mut p = Program::from_parts(
            "p".into(),
            vec![vec![load(0)], vec![load(1)]],
            vec![site("a"), site("b")],
            BTreeMap::new(),
            vec![],
        );
        assert!(p.symmetry_partition().same_class(0, 1));
        assert_eq!(p.declared_symmetry(), None, "from_parts declares nothing");
        // A declaration can only restrict, never extend.
        p.declare_symmetry(ThreadPartition::identity(2));
        assert!(p.symmetry_partition().is_trivial());
        p.clear_symmetry();
        assert!(p.symmetry_partition().same_class(0, 1));
        // Diverging one site's mode splits the class regardless.
        p.set_mode(ModeRef(0), Mode::Rlx);
        assert!(p.symmetry_partition().is_trivial());
    }

    #[test]
    #[should_panic(expected = "cover all")]
    fn declare_symmetry_checks_thread_count() {
        use vsync_graph::ThreadPartition;
        let mut p = one_site_program(Mode::Acq, SiteKind::Load);
        p.declare_symmetry(ThreadPartition::identity(5));
    }

    #[test]
    fn set_mode_rejects_invalid() {
        let mut p = one_site_program(Mode::Acq, SiteKind::Load);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.set_mode(ModeRef(0), Mode::Rel)
        }));
        assert!(r.is_err());
    }
}
