//! The instruction set of the tiny concurrent language (paper §2.1).
//!
//! The paper formalizes programs as sequences of event-generating `step`s
//! plus `do-await-while` statements. This crate realizes the same idea as a
//! small register machine:
//!
//! * shared-memory instructions generate graph events (loads, stores, RMWs,
//!   CAS, fences, failed assertions);
//! * local instructions (`Mov`, `Op`, jumps) are the paper's
//!   state-transformer lambdas;
//! * *await instructions* ([`Instr::AwaitLoad`], [`Instr::AwaitRmw`],
//!   [`Instr::AwaitCas`]) are the primitive polling loops of the VSync
//!   atomics API (`atomic_await_eq`, `await_while(xchg(..))`, …). Failed
//!   await iterations generate only the polling read (Definition 3 of the
//!   paper forbids writes in failed iterations); the successful final
//!   iteration additionally generates the RMW write.

use std::fmt;

use vsync_graph::Value;

/// A thread-local register. Each thread has [`NUM_REGS`] registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// Number of registers per thread.
pub const NUM_REGS: usize = 32;

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An operand: a register or an immediate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Value of a register.
    Reg(Reg),
    /// Immediate constant.
    Imm(Value),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// A memory address: immediate, register-indirect, or register + offset.
///
/// Register-based addresses let threads follow pointers read from shared
/// memory (e.g. `prev->next` in an MCS lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Addr {
    /// A fixed location.
    Imm(u64),
    /// The address held in a register.
    Reg(Reg),
    /// `register + offset` (field access through a pointer).
    RegOff(Reg, u64),
}

impl From<u64> for Addr {
    fn from(a: u64) -> Self {
        Addr::Imm(a)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Imm(a) => write!(f, "[{a:#x}]"),
            Addr::Reg(r) => write!(f, "[{r}]"),
            Addr::RegOff(r, o) => write!(f, "[{r}+{o:#x}]"),
        }
    }
}

/// Comparison operator of a [`Test`] (unsigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl Cmp {
    /// Evaluate `a cmp b`.
    pub fn eval(self, a: Value, b: Value) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        })
    }
}

/// A predicate on a value: `(v [& mask]) cmp rhs`.
///
/// This is the loop condition `κ` of awaits, the branch condition of
/// [`Instr::JmpIf`] and the predicate of [`Instr::Assert`]. The optional
/// mask supports VSync's `await_mask_eq`-style operations used by the
/// qspinlock (Fig. 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Test {
    /// Optional mask applied to the value before comparing.
    pub mask: Option<Operand>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: Operand,
}

impl Test {
    /// `v == rhs`
    pub fn eq(rhs: impl Into<Operand>) -> Self {
        Test { mask: None, cmp: Cmp::Eq, rhs: rhs.into() }
    }

    /// `v != rhs`
    pub fn ne(rhs: impl Into<Operand>) -> Self {
        Test { mask: None, cmp: Cmp::Ne, rhs: rhs.into() }
    }

    /// `(v & mask) == rhs`
    pub fn mask_eq(mask: impl Into<Operand>, rhs: impl Into<Operand>) -> Self {
        Test { mask: Some(mask.into()), cmp: Cmp::Eq, rhs: rhs.into() }
    }

    /// `(v & mask) != rhs`
    pub fn mask_ne(mask: impl Into<Operand>, rhs: impl Into<Operand>) -> Self {
        Test { mask: Some(mask.into()), cmp: Cmp::Ne, rhs: rhs.into() }
    }

    /// General comparison against `rhs`.
    pub fn cmp(cmp: Cmp, rhs: impl Into<Operand>) -> Self {
        Test { mask: None, cmp, rhs: rhs.into() }
    }
}

impl fmt::Display for Test {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mask {
            Some(m) => write!(f, "(v & {m}) {} {}", self.cmp, self.rhs),
            None => write!(f, "v {} {}", self.cmp, self.rhs),
        }
    }
}

/// A fully resolved test (operands evaluated to constants). Produced during
/// replay, consumed by the explorer's await-termination analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResolvedTest {
    /// Mask (`u64::MAX` when absent).
    pub mask: Value,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: Value,
}

impl ResolvedTest {
    /// Evaluate the test on a value.
    pub fn eval(self, v: Value) -> bool {
        self.cmp.eval(v & self.mask, self.rhs)
    }
}

/// Arithmetic/logical operations of [`Instr::Op`] (all wrapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (by `b & 63`).
    Shl,
    /// Logical right shift (by `b & 63`).
    Shr,
}

impl AluOp {
    /// Apply the operation.
    pub fn apply(self, a: Value, b: Value) -> Value {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Read-modify-write operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// Exchange: the new value is the operand.
    Xchg,
    /// Fetch-and-add.
    Add,
    /// Fetch-and-sub.
    Sub,
    /// Fetch-and-or.
    Or,
    /// Fetch-and-and.
    And,
    /// Fetch-and-xor.
    Xor,
}

impl RmwOp {
    /// Compute the stored value from the old value and the operand.
    pub fn apply(self, old: Value, operand: Value) -> Value {
        match self {
            RmwOp::Xchg => operand,
            RmwOp::Add => old.wrapping_add(operand),
            RmwOp::Sub => old.wrapping_sub(operand),
            RmwOp::Or => old | operand,
            RmwOp::And => old & operand,
            RmwOp::Xor => old ^ operand,
        }
    }
}

impl fmt::Display for RmwOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RmwOp::Xchg => "xchg",
            RmwOp::Add => "add",
            RmwOp::Sub => "sub",
            RmwOp::Or => "or",
            RmwOp::And => "and",
            RmwOp::Xor => "xor",
        })
    }
}

/// Reference to a barrier site in the program's site table.
///
/// Every memory-ordering annotation in a program is an indirection through
/// the site table so the optimizer can relax sites without rewriting code
/// (paper §"barrier optimization").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModeRef(pub u32);

/// One instruction of the language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = load(addr)` — generates a read event.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address.
        addr: Addr,
        /// Barrier site.
        mode: ModeRef,
    },
    /// `store(addr, src)` — generates a write event.
    Store {
        /// Address.
        addr: Addr,
        /// Stored value.
        src: Operand,
        /// Barrier site.
        mode: ModeRef,
    },
    /// `dst = rmw(addr, op, operand)` — atomic read-modify-write; `dst`
    /// receives the old value. Generates a read event and a write event.
    Rmw {
        /// Destination register (old value).
        dst: Reg,
        /// Address.
        addr: Addr,
        /// Update operation.
        op: RmwOp,
        /// Operand of the update.
        operand: Operand,
        /// Barrier site.
        mode: ModeRef,
    },
    /// `dst = cas(addr, expected, new)` — compare-and-swap; `dst` receives
    /// the old value. A successful CAS generates read + write events; a
    /// failed CAS generates only the read.
    Cas {
        /// Destination register (old value).
        dst: Reg,
        /// Address.
        addr: Addr,
        /// Expected value.
        expected: Operand,
        /// New value on success.
        new: Operand,
        /// Barrier site.
        mode: ModeRef,
    },
    /// A memory fence. Relaxed fences are no-ops and generate no event.
    Fence {
        /// Barrier site.
        mode: ModeRef,
    },
    /// `dst = await_load(addr) until test(value)` — primitive await: poll
    /// `addr` until the test holds. Each failed iteration generates one
    /// read event.
    AwaitLoad {
        /// Destination register (final value).
        dst: Reg,
        /// Polled address.
        addr: Addr,
        /// Exit condition on the polled value.
        until: Test,
        /// Barrier site.
        mode: ModeRef,
    },
    /// `dst = await_rmw(addr, op, operand) until test(old)` — poll `addr`
    /// until the test holds on the read value, then perform the RMW
    /// (`await_while(xchg(&lock,1) != 0)` is `until: old == 0, op: xchg 1`).
    ///
    /// Failed iterations generate only the read. The program must guarantee
    /// that the elided failed-iteration write would be value-preserving
    /// (the Bounded-Effect principle, paper Def. 3); the replayer checks
    /// this and reports a fault otherwise.
    AwaitRmw {
        /// Destination register (old value of the successful iteration).
        dst: Reg,
        /// Polled address.
        addr: Addr,
        /// Exit condition on the old value.
        until: Test,
        /// Update operation applied on exit.
        op: RmwOp,
        /// Operand of the update.
        operand: Operand,
        /// Barrier site.
        mode: ModeRef,
    },
    /// `dst = await_cas(addr, expected, new)` — poll until the location
    /// holds `expected`, then swap in `new`. Always bounded-effect safe.
    AwaitCas {
        /// Destination register (old value, = expected on exit).
        dst: Reg,
        /// Polled address.
        addr: Addr,
        /// Expected value.
        expected: Operand,
        /// New value.
        new: Operand,
        /// Barrier site.
        mode: ModeRef,
    },
    /// `dst = src` (local).
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = a op b` (local).
    Op {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: AluOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Unconditional jump.
    Jmp {
        /// Target pc.
        target: usize,
    },
    /// Jump when `test(src)` holds.
    JmpIf {
        /// Tested operand.
        src: Operand,
        /// Predicate.
        test: Test,
        /// Target pc.
        target: usize,
    },
    /// Assert `test(src)`; on failure generates an error event and stops
    /// the thread (the paper's `E` event).
    Assert {
        /// Tested operand.
        src: Operand,
        /// Predicate.
        test: Test,
        /// Message attached to the error event.
        msg: String,
    },
    /// No operation.
    Nop,
}

impl Instr {
    /// The barrier site of the instruction, if it has one.
    pub fn mode_ref(&self) -> Option<ModeRef> {
        match self {
            Instr::Load { mode, .. }
            | Instr::Store { mode, .. }
            | Instr::Rmw { mode, .. }
            | Instr::Cas { mode, .. }
            | Instr::Fence { mode }
            | Instr::AwaitLoad { mode, .. }
            | Instr::AwaitRmw { mode, .. }
            | Instr::AwaitCas { mode, .. } => Some(*mode),
            _ => None,
        }
    }

    /// Is this one of the primitive await instructions?
    pub fn is_await(&self) -> bool {
        matches!(
            self,
            Instr::AwaitLoad { .. } | Instr::AwaitRmw { .. } | Instr::AwaitCas { .. }
        )
    }

    /// Overwrite the instruction's barrier site reference (no-op for
    /// instructions without one). Used by the builder's site remapping and
    /// by the symmetry detector's mode-resolved code comparison.
    pub(crate) fn set_mode_ref(&mut self, m: ModeRef) {
        match self {
            Instr::Load { mode, .. }
            | Instr::Store { mode, .. }
            | Instr::Rmw { mode, .. }
            | Instr::Cas { mode, .. }
            | Instr::Fence { mode }
            | Instr::AwaitLoad { mode, .. }
            | Instr::AwaitRmw { mode, .. }
            | Instr::AwaitCas { mode, .. } => *mode = m,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        assert!(Cmp::Eq.eval(1, 1));
        assert!(Cmp::Ne.eval(1, 2));
        assert!(Cmp::Lt.eval(1, 2));
        assert!(Cmp::Le.eval(2, 2));
        assert!(Cmp::Gt.eval(3, 2));
        assert!(Cmp::Ge.eval(2, 2));
        assert!(!Cmp::Lt.eval(2, 2));
    }

    #[test]
    fn resolved_test_applies_mask() {
        let t = ResolvedTest { mask: 0xff, cmp: Cmp::Eq, rhs: 0x34 };
        assert!(t.eval(0x1234));
        assert!(!t.eval(0x1235));
    }

    #[test]
    fn alu_ops_wrap() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn rmw_ops() {
        assert_eq!(RmwOp::Xchg.apply(5, 9), 9);
        assert_eq!(RmwOp::Add.apply(5, 9), 14);
        assert_eq!(RmwOp::Sub.apply(5, 2), 3);
        assert_eq!(RmwOp::Or.apply(0b01, 0b10), 0b11);
        assert_eq!(RmwOp::And.apply(0b11, 0b10), 0b10);
        assert_eq!(RmwOp::Xor.apply(0b11, 0b01), 0b10);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(Operand::Imm(7).to_string(), "7");
        assert_eq!(Addr::RegOff(Reg(1), 8).to_string(), "[r1+0x8]");
        assert_eq!(Test::eq(1u64).to_string(), "v == 1");
        assert_eq!(Test::mask_eq(0xffu64, 0u64).to_string(), "(v & 255) == 0");
    }

    #[test]
    fn instr_mode_refs() {
        let i = Instr::Load { dst: Reg(0), addr: Addr::Imm(1), mode: ModeRef(4) };
        assert_eq!(i.mode_ref(), Some(ModeRef(4)));
        assert_eq!(Instr::Nop.mode_ref(), None);
        assert!(Instr::AwaitLoad { dst: Reg(0), addr: Addr::Imm(0), until: Test::eq(0u64), mode: ModeRef(0) }.is_await());
        assert!(!i.is_await());
    }
}
