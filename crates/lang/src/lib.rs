//! # vsync-lang
//!
//! The tiny concurrent language of the paper (§2.1), realized as a register
//! machine with primitive *await* instructions, plus its graph-driven
//! replay semantics (`consP(G)`, §2.1.2).
//!
//! Programs are built with [`ProgramBuilder`]; every memory-ordering
//! annotation becomes a [`BarrierSite`] the optimizer can relax. The
//! replayer ([`replay`]) reconstructs thread states from an execution graph
//! and reports each thread's next event — the interface the AMC explorer
//! drives.
//!
//! ```
//! use vsync_lang::{ProgramBuilder, Reg};
//! use vsync_graph::Mode;
//!
//! // Fig. 1 of the paper: T1 signals q, T2 waits for it.
//! let mut pb = ProgramBuilder::new("fig1");
//! let (locked, q) = (0x10, 0x20);
//! pb.thread(|t| {
//!     t.store(locked, 1u64, Mode::Rlx);
//!     t.store(q, 1u64, ("q.signal", Mode::Rel));
//!     t.await_eq(Reg(0), locked, 0u64, Mode::Rlx);
//! });
//! pb.thread(|t| {
//!     t.await_eq(Reg(0), q, 1u64, ("q.poll", Mode::Acq));
//!     t.store(locked, 0u64, Mode::Rlx);
//! });
//! let program = pb.build().expect("well-formed");
//! assert_eq!(program.num_threads(), 2);
//! ```

#![warn(missing_docs)]

mod builder;
mod insn;
mod program;
mod replay;
pub mod trace;

pub use builder::{Fixed, IntoSite, Label, ProgramBuilder, ThreadBuilder};
pub use insn::{
    Addr, AluOp, Cmp, Instr, ModeRef, Operand, Reg, ResolvedTest, RmwOp, Test, NUM_REGS,
};
pub use program::{
    BarrierSite, BarrierSummary, FinalCheck, Program, ProgramError, SiteKind,
};
pub use replay::{
    replay, replay_adopt_modes, replay_with_budget, BlockedAwait, PendingOp, ReadDesc,
    ReplayOutcome, ThreadStatus, DEFAULT_STEP_BUDGET,
};
