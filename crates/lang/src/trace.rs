//! Lowering recorded shared-memory traces into [`Program`]s.
//!
//! This is the language half of the `vsync-shim` instrumented runtime: the
//! shim records what real Rust code *did* under a deterministic scheduler —
//! a [`Trace`] of loads, stores, RMWs, CASes and fences per thread — and
//! this module reconstructs a checkable program from it:
//!
//! * **spin → await**: a run of consecutive identical polls that the
//!   recorder tagged as spinning collapses into a single native `Await`
//!   instruction (paper §2.1), so `while x.load() != v {}` becomes
//!   `await_load(x) until == v` instead of an unbounded unrolled loop;
//! * **template → partition**: threads recorded from the same closure
//!   template are *unified* — their per-thread op sequences are aligned
//!   position by position and emitted as identical code, which
//!   [`ProgramBuilder::build`] then detects and declares as the program's
//!   thread-symmetry partition;
//! * **value provenance**: recorded traces are data: a stored value of `2`
//!   does not say *why* it was `2`. Lowering recovers register dataflow
//!   with a cross-thread uniform-delta rule — an input value is considered
//!   register-derived iff every unified thread's value sits at the *same*
//!   offset from the same earlier read — so a ticket lock's
//!   `owner.store(owner.load() + 1)` lowers to `store(owner, r + 1)`, not
//!   to the constants each thread happened to write during recording.
//!
//! The soundness caveats of checking recorded traces (bounded iteration,
//! data-independence) are documented in `DESIGN.md` §11.

use std::collections::BTreeMap;
use std::fmt;

use vsync_graph::{Loc, Mode, Value};

use crate::builder::{Fixed, ProgramBuilder, ThreadBuilder};
use crate::insn::{Operand, Reg, RmwOp, Test};
use crate::program::{Program, ProgramError, SiteKind};

/// One recorded shared-memory operation, with the concrete values observed
/// during the recording run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// A load that read `value`.
    Load {
        /// Accessed location.
        loc: Loc,
        /// Memory order used.
        mode: Mode,
        /// The value read.
        value: Value,
    },
    /// A store of `value`.
    Store {
        /// Accessed location.
        loc: Loc,
        /// Memory order used.
        mode: Mode,
        /// The value written.
        value: Value,
    },
    /// A read-modify-write that read `old` (and wrote `op.apply(old, operand)`).
    Rmw {
        /// Accessed location.
        loc: Loc,
        /// Memory order used.
        mode: Mode,
        /// The RMW operation.
        op: RmwOp,
        /// The operand value.
        operand: Value,
        /// The value read (before modification).
        old: Value,
    },
    /// A compare-and-swap that read `old`; it succeeded iff `old == expected`.
    Cas {
        /// Accessed location.
        loc: Loc,
        /// Memory order used.
        mode: Mode,
        /// The expected value.
        expected: Value,
        /// The replacement value.
        new: Value,
        /// The value read.
        old: Value,
    },
    /// A memory fence.
    Fence {
        /// Fence order.
        mode: Mode,
    },
}

impl TraceOp {
    fn loc(&self) -> Option<Loc> {
        match self {
            TraceOp::Load { loc, .. }
            | TraceOp::Store { loc, .. }
            | TraceOp::Rmw { loc, .. }
            | TraceOp::Cas { loc, .. } => Some(*loc),
            TraceOp::Fence { .. } => None,
        }
    }

    fn site_kind(&self) -> SiteKind {
        match self {
            TraceOp::Load { .. } => SiteKind::Load,
            TraceOp::Store { .. } => SiteKind::Store,
            TraceOp::Rmw { .. } | TraceOp::Cas { .. } => SiteKind::Rmw,
            TraceOp::Fence { .. } => SiteKind::Fence,
        }
    }

    fn mode(&self) -> Mode {
        match self {
            TraceOp::Load { mode, .. }
            | TraceOp::Store { mode, .. }
            | TraceOp::Rmw { mode, .. }
            | TraceOp::Cas { mode, .. }
            | TraceOp::Fence { mode } => *mode,
        }
    }
}

/// One entry of a thread's recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The operation and its observed values.
    pub op: TraceOp,
    /// Source-level barrier-site annotation, if the op ran inside a
    /// `shim::site("name", ..)` scope. Annotated ops lower to *named,
    /// relaxable* barrier sites (shared across threads by name — the
    /// optimizer's targets); unannotated ops lower to auto-named
    /// non-relaxable sites, like hand-built client code.
    pub site: Option<String>,
    /// Tagged by the recorder when this entry is part of a detected
    /// polling loop (including the final, condition-satisfying poll).
    pub spin: bool,
}

/// The recorded trace of one thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Recorded operations, in program order.
    pub ops: Vec<TraceEntry>,
    /// Template class: threads recorded from the same source closure carry
    /// the same id and are unified during lowering. `None` = singleton.
    pub template: Option<u32>,
}

/// A complete recorded run: initial memory, per-thread op sequences, and
/// deferred final-state checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Program name (used in reports).
    pub name: String,
    /// Initial value of every registered location.
    pub init: BTreeMap<Loc, Value>,
    /// Per-thread traces, in spawn order.
    pub threads: Vec<ThreadTrace>,
    /// Final-state equality checks: `(loc, expected value, message)`.
    pub final_checks: Vec<(Loc, Value, String)>,
}

impl Trace {
    /// Drop all template declarations, turning every thread into a
    /// singleton. Used as a fallback when template unification fails
    /// (threads of one template genuinely diverged, e.g. by branching on
    /// their thread index): lowering still succeeds, but without the
    /// declared symmetry partition and without cross-thread value
    /// provenance.
    pub fn clear_templates(&mut self) {
        for t in &mut self.threads {
            t.template = None;
        }
    }

    /// Total number of recorded operations across all threads.
    pub fn num_ops(&self) -> usize {
        self.threads.iter().map(|t| t.ops.len()).sum()
    }
}

/// Errors detected while lowering a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Threads declared as instances of one template could not be aligned:
    /// their collapsed op sequences differ in length or shape at some
    /// position. Retry after [`Trace::clear_templates`] to lower them as
    /// independent threads (losing symmetry, keeping soundness).
    TemplateMismatch {
        /// The template class id.
        class: u32,
        /// The two thread indices that failed to align.
        threads: (usize, usize),
        /// Aligned op position at which they diverge (`None` = lengths differ).
        position: Option<usize>,
    },
    /// A spin-tagged run of polls never reached a condition-satisfying
    /// final poll — the recording ended mid-spin.
    UnterminatedSpin {
        /// Offending thread.
        thread: usize,
        /// Index of the first entry of the run.
        entry: usize,
    },
    /// An input value (store source, RMW operand, CAS operand, or await
    /// exit condition) could not be expressed: the unified threads' values
    /// differ but sit at no uniform offset from any earlier read.
    ValueProvenance {
        /// Offending thread.
        thread: usize,
        /// Aligned op position.
        position: usize,
    },
    /// One thread performs more value-producing operations than the
    /// register file can hold.
    TooManyValues {
        /// Offending thread.
        thread: usize,
    },
    /// A site annotation name is used with conflicting kinds or modes —
    /// named sites are shared, so every use must agree.
    SiteConflict {
        /// The conflicting annotation name.
        name: String,
    },
    /// The assembled program failed validation.
    Program(ProgramError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::TemplateMismatch { class, threads, position } => match position {
                Some(p) => write!(
                    f,
                    "template {class}: threads {} and {} diverge at op {p}; \
                     clear templates to lower them independently",
                    threads.0, threads.1
                ),
                None => write!(
                    f,
                    "template {class}: threads {} and {} recorded different op counts; \
                     clear templates to lower them independently",
                    threads.0, threads.1
                ),
            },
            TraceError::UnterminatedSpin { thread, entry } => {
                write!(f, "thread {thread}: spin starting at op {entry} never completed")
            }
            TraceError::ValueProvenance { thread, position } => write!(
                f,
                "thread {thread} op {position}: value has no uniform register provenance \
                 across the template's threads"
            ),
            TraceError::TooManyValues { thread } => {
                write!(f, "thread {thread}: too many value-producing operations for the register file")
            }
            TraceError::SiteConflict { name } => {
                write!(f, "site annotation '{name}' used with conflicting kinds or modes")
            }
            TraceError::Program(e) => write!(f, "lowered program is malformed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<ProgramError> for TraceError {
    fn from(e: ProgramError) -> Self {
        TraceError::Program(e)
    }
}

// ---------------------------------------------------------------------------
// Stage 1: collapse spin runs into macro-ops.
// ---------------------------------------------------------------------------

/// A thread's trace after spin-collapse: one macro-op per source-level
/// operation, with awaits folded back into single ops.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MacroOp {
    op: TraceOp,
    site: Option<String>,
    /// The op was a polling loop (collapsed from `iters` recorded polls);
    /// its `TraceOp` carries the *exit* values (final poll).
    awaited: bool,
    iters: usize,
}

/// Shape of a collapsible poll: everything except the observed values.
#[derive(PartialEq, Eq)]
enum PollShape<'a> {
    Load(Loc, Mode, &'a Option<String>),
    Rmw(Loc, Mode, RmwOp, Value, &'a Option<String>),
    Cas(Loc, Mode, Value, Value, &'a Option<String>),
}

fn poll_shape(e: &TraceEntry) -> Option<PollShape<'_>> {
    match &e.op {
        TraceOp::Load { loc, mode, .. } => Some(PollShape::Load(*loc, *mode, &e.site)),
        TraceOp::Rmw { loc, mode, op, operand, .. } => {
            Some(PollShape::Rmw(*loc, *mode, *op, *operand, &e.site))
        }
        TraceOp::Cas { loc, mode, expected, new, .. } => {
            Some(PollShape::Cas(*loc, *mode, *expected, *new, &e.site))
        }
        TraceOp::Store { .. } | TraceOp::Fence { .. } => None,
    }
}

/// Is `e` a poll that *fails* its loop condition? (A spin run must end
/// with a non-failing poll: a CAS that succeeded, or a load/RMW that read
/// something other than the stuck value.)
fn poll_failed(e: &TraceEntry, stuck: Value) -> bool {
    match &e.op {
        TraceOp::Load { value, .. } => *value == stuck,
        TraceOp::Rmw { old, .. } => *old == stuck,
        TraceOp::Cas { expected, old, .. } => *old != *expected,
        _ => false,
    }
}

fn entry_read_value(e: &TraceEntry) -> Value {
    match &e.op {
        TraceOp::Load { value, .. } => *value,
        TraceOp::Rmw { old, .. } | TraceOp::Cas { old, .. } => *old,
        _ => 0,
    }
}

fn collapse(thread: usize, ops: &[TraceEntry]) -> Result<Vec<MacroOp>, TraceError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        let e = &ops[i];
        if !e.spin {
            out.push(MacroOp { op: e.op.clone(), site: e.site.clone(), awaited: false, iters: 1 });
            i += 1;
            continue;
        }
        // Maximal run of same-shape, spin-tagged entries.
        let shape = poll_shape(e)
            .ok_or(TraceError::UnterminatedSpin { thread, entry: i })?;
        let mut j = i;
        while j + 1 < ops.len()
            && ops[j + 1].spin
            && poll_shape(&ops[j + 1]).map(|s| s == shape).unwrap_or(false)
        {
            j += 1;
        }
        let stuck = entry_read_value(e);
        if poll_failed(&ops[j], stuck) {
            return Err(TraceError::UnterminatedSpin { thread, entry: i });
        }
        out.push(MacroOp {
            op: ops[j].op.clone(), // exit poll carries the exit values
            site: e.site.clone(),
            awaited: true,
            iters: j - i + 1,
        });
        i = j + 1;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Stage 2: template unification.
// ---------------------------------------------------------------------------

/// Do two macro-ops of aligned template threads share a shape? Values may
/// differ (resolved later by provenance); everything structural must agree.
fn unifiable(a: &MacroOp, b: &MacroOp) -> bool {
    a.site == b.site
        && a.op.mode() == b.op.mode()
        && a.op.loc() == b.op.loc()
        && match (&a.op, &b.op) {
            (TraceOp::Load { .. }, TraceOp::Load { .. }) => true,
            (TraceOp::Store { .. }, TraceOp::Store { .. }) => true,
            (TraceOp::Rmw { op: oa, .. }, TraceOp::Rmw { op: ob, .. }) => oa == ob,
            (TraceOp::Cas { .. }, TraceOp::Cas { .. }) => true,
            (TraceOp::Fence { .. }, TraceOp::Fence { .. }) => true,
            _ => false,
        }
}

/// One group of threads lowered to identical code: either a unified
/// template class or a singleton.
struct Group {
    /// Member thread indices, in trace order.
    members: Vec<usize>,
    /// Aligned macro-ops, one row per member.
    rows: Vec<Vec<MacroOp>>,
}

fn group_threads(trace: &Trace) -> Result<Vec<Group>, TraceError> {
    let mut groups: Vec<Group> = Vec::new();
    let mut by_class: BTreeMap<u32, usize> = BTreeMap::new();
    for (tid, t) in trace.threads.iter().enumerate() {
        let row = collapse(tid, &t.ops)?;
        match t.template {
            None => groups.push(Group { members: vec![tid], rows: vec![row] }),
            Some(class) => match by_class.get(&class) {
                None => {
                    by_class.insert(class, groups.len());
                    groups.push(Group { members: vec![tid], rows: vec![row] });
                }
                Some(&gi) => {
                    let g = &mut groups[gi];
                    let first = (g.members[0], &g.rows[0]);
                    if first.1.len() != row.len() {
                        return Err(TraceError::TemplateMismatch {
                            class,
                            threads: (first.0, tid),
                            position: None,
                        });
                    }
                    if let Some(p) =
                        first.1.iter().zip(&row).position(|(a, b)| !unifiable(a, b))
                    {
                        return Err(TraceError::TemplateMismatch {
                            class,
                            threads: (first.0, tid),
                            position: Some(p),
                        });
                    }
                    g.members.push(tid);
                    g.rows.push(row);
                }
            },
        }
    }
    // A promoted await must be an *await* for every member: a plain CAS
    // that failed cannot pose as the successful exit of an await-CAS.
    for g in &groups {
        let len = g.rows[0].len();
        for p in 0..len {
            let awaited = g.rows.iter().any(|r| r[p].awaited);
            if !awaited {
                continue;
            }
            for (m, row) in g.rows.iter().enumerate() {
                if let TraceOp::Cas { expected, old, .. } = &row[p].op {
                    if old != expected {
                        return Err(TraceError::TemplateMismatch {
                            class: trace.threads[g.members[m]].template.unwrap_or(0),
                            threads: (g.members[0], g.members[m]),
                            position: Some(p),
                        });
                    }
                }
            }
        }
    }
    Ok(groups)
}

// ---------------------------------------------------------------------------
// Stage 3: value provenance + emission planning.
// ---------------------------------------------------------------------------

/// How an input value is expressed in the lowered code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Imm(Value),
    Reg(Reg),
    /// `base + delta` (wrapping), via a scratch `Op` before the instruction.
    Derived(Reg, Value),
}

/// An earlier value-producing op: the register it wrote and the value each
/// group member observed.
struct Producer {
    reg: Reg,
    loc: Option<Loc>,
    values: Vec<Value>,
}

/// Largest |delta| the *singleton* same-location heuristic accepts. With a
/// single thread there is no cross-thread evidence, so only small
/// increments over the most recent read of the same location (the
/// `store(c, load(c) + 1)` idiom) are treated as register-derived;
/// everything else stays an immediate.
const SINGLETON_MAX_DELTA: u64 = 8;

fn resolve(
    vals: &[Value],
    producers: &[Producer],
    loc: Option<Loc>,
    thread: usize,
    position: usize,
) -> Result<Src, TraceError> {
    let n = vals.len();
    if n >= 2 {
        if vals.iter().all(|v| *v == vals[0]) {
            return Ok(Src::Imm(vals[0]));
        }
        for p in producers.iter().rev() {
            let delta = vals[0].wrapping_sub(p.values[0]);
            if (1..n).all(|i| vals[i].wrapping_sub(p.values[i]) == delta) {
                return Ok(if delta == 0 { Src::Reg(p.reg) } else { Src::Derived(p.reg, delta) });
            }
        }
        Err(TraceError::ValueProvenance { thread, position })
    } else {
        // Singleton: same-location small-increment heuristic only.
        if let Some(loc) = loc {
            if let Some(p) = producers.iter().rev().find(|p| p.loc == Some(loc)) {
                let delta = vals[0].wrapping_sub(p.values[0]);
                if delta != 0 && (delta <= SINGLETON_MAX_DELTA || delta.wrapping_neg() <= SINGLETON_MAX_DELTA)
                {
                    return Ok(Src::Derived(p.reg, delta));
                }
            }
        }
        Ok(Src::Imm(vals[0]))
    }
}

/// Highest register index usable for producer values; the top registers
/// are reserved as scratch for `Derived` operands.
const SCRATCH0: u8 = (crate::insn::NUM_REGS - 1) as u8;
const SCRATCH1: u8 = (crate::insn::NUM_REGS - 2) as u8;
const MAX_PRODUCERS: usize = crate::insn::NUM_REGS - 2;

/// A planned instruction: one per macro-op, identical for every member of
/// the group.
struct Planned {
    op: PlannedOp,
    site: Option<String>,
    mode: Mode,
}

enum PlannedOp {
    Load { dst: Reg, loc: Loc },
    AwaitLoad { dst: Reg, loc: Loc, until: Src },
    Store { loc: Loc, src: Src },
    Rmw { dst: Reg, loc: Loc, op: RmwOp, operand: Src },
    AwaitRmw { dst: Reg, loc: Loc, op: RmwOp, operand: Src, until: Src },
    Cas { dst: Reg, loc: Loc, expected: Src, new: Src },
    AwaitCas { dst: Reg, loc: Loc, expected: Src, new: Src },
    Fence,
}

fn plan_group(g: &Group) -> Result<Vec<Planned>, TraceError> {
    let thread = g.members[0];
    let mut producers: Vec<Producer> = Vec::new();
    let mut plan = Vec::new();
    let len = g.rows[0].len();
    for p in 0..len {
        let awaited = g.rows.iter().any(|r| r[p].awaited);
        let first = &g.rows[0][p];
        let mode = first.op.mode();
        let site = first.site.clone();
        let column = |f: &dyn Fn(&TraceOp) -> Value| -> Vec<Value> {
            g.rows.iter().map(|r| f(&r[p].op)).collect()
        };
        let alloc = |producers: &mut Vec<Producer>, loc: Option<Loc>, values: Vec<Value>| {
            if producers.len() >= MAX_PRODUCERS {
                return Err(TraceError::TooManyValues { thread });
            }
            let reg = Reg(producers.len() as u8);
            producers.push(Producer { reg, loc, values });
            Ok(reg)
        };
        let op = match &first.op {
            TraceOp::Load { loc, .. } => {
                let exits = column(&|o| match o {
                    TraceOp::Load { value, .. } => *value,
                    _ => unreachable!(),
                });
                let until = if awaited {
                    Some(resolve(&exits, &producers, None, thread, p)?)
                } else {
                    None
                };
                let dst = alloc(&mut producers, Some(*loc), exits)?;
                match until {
                    Some(until) => PlannedOp::AwaitLoad { dst, loc: *loc, until },
                    None => PlannedOp::Load { dst, loc: *loc },
                }
            }
            TraceOp::Store { loc, .. } => {
                let vals = column(&|o| match o {
                    TraceOp::Store { value, .. } => *value,
                    _ => unreachable!(),
                });
                let src = resolve(&vals, &producers, Some(*loc), thread, p)?;
                PlannedOp::Store { loc: *loc, src }
            }
            TraceOp::Rmw { loc, op, .. } => {
                let operands = column(&|o| match o {
                    TraceOp::Rmw { operand, .. } => *operand,
                    _ => unreachable!(),
                });
                let olds = column(&|o| match o {
                    TraceOp::Rmw { old, .. } => *old,
                    _ => unreachable!(),
                });
                let operand = resolve(&operands, &producers, None, thread, p)?;
                let until = if awaited {
                    Some(resolve(&olds, &producers, None, thread, p)?)
                } else {
                    None
                };
                let dst = alloc(&mut producers, Some(*loc), olds)?;
                match until {
                    Some(until) => PlannedOp::AwaitRmw { dst, loc: *loc, op: *op, operand, until },
                    None => PlannedOp::Rmw { dst, loc: *loc, op: *op, operand },
                }
            }
            TraceOp::Cas { loc, .. } => {
                let expecteds = column(&|o| match o {
                    TraceOp::Cas { expected, .. } => *expected,
                    _ => unreachable!(),
                });
                let news = column(&|o| match o {
                    TraceOp::Cas { new, .. } => *new,
                    _ => unreachable!(),
                });
                let olds = column(&|o| match o {
                    TraceOp::Cas { old, .. } => *old,
                    _ => unreachable!(),
                });
                let expected = resolve(&expecteds, &producers, None, thread, p)?;
                let new = resolve(&news, &producers, None, thread, p)?;
                let dst = alloc(&mut producers, Some(*loc), olds)?;
                if awaited {
                    PlannedOp::AwaitCas { dst, loc: *loc, expected, new }
                } else {
                    PlannedOp::Cas { dst, loc: *loc, expected, new }
                }
            }
            TraceOp::Fence { .. } => PlannedOp::Fence,
        };
        plan.push(Planned { op, site, mode });
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Stage 4: emission.
// ---------------------------------------------------------------------------

/// Materialize a [`Src`]: `Derived` operands emit a scratch `Op` first.
fn emit_src(t: &mut ThreadBuilder, s: Src, scratch: Reg) -> Operand {
    match s {
        Src::Imm(v) => Operand::Imm(v),
        Src::Reg(r) => Operand::Reg(r),
        Src::Derived(base, delta) => {
            t.add(scratch, base, delta);
            Operand::Reg(scratch)
        }
    }
}

fn emit(t: &mut ThreadBuilder, plan: &[Planned]) {
    for p in plan {
        // Annotated ops become named relaxable sites (shared across the
        // template's threads); unannotated ops are pinned like hand-built
        // client code.
        macro_rules! with_site {
            ($f:expr) => {
                match &p.site {
                    Some(name) => $f((name.as_str(), p.mode)),
                    None => $f(Fixed(p.mode)),
                }
            };
        }
        match &p.op {
            PlannedOp::Load { dst, loc } => {
                with_site!(|s| { t.load(*dst, *loc, s); });
            }
            PlannedOp::AwaitLoad { dst, loc, until } => {
                let rhs = emit_src(t, *until, Reg(SCRATCH0));
                with_site!(|s| { t.await_load(*dst, *loc, Test::eq(rhs), s); });
            }
            PlannedOp::Store { loc, src } => {
                let v = emit_src(t, *src, Reg(SCRATCH0));
                with_site!(|s| { t.store(*loc, v, s); });
            }
            PlannedOp::Rmw { dst, loc, op, operand } => {
                let v = emit_src(t, *operand, Reg(SCRATCH0));
                with_site!(|s| { t.rmw(*dst, *loc, *op, v, s); });
            }
            PlannedOp::AwaitRmw { dst, loc, op, operand, until } => {
                let v = emit_src(t, *operand, Reg(SCRATCH0));
                let rhs = emit_src(t, *until, Reg(SCRATCH1));
                with_site!(|s| { t.await_rmw(*dst, *loc, Test::eq(rhs), *op, v, s); });
            }
            PlannedOp::Cas { dst, loc, expected, new } => {
                let e = emit_src(t, *expected, Reg(SCRATCH0));
                let n = emit_src(t, *new, Reg(SCRATCH1));
                with_site!(|s| { t.cas(*dst, *loc, e, n, s); });
            }
            PlannedOp::AwaitCas { dst, loc, expected, new } => {
                let e = emit_src(t, *expected, Reg(SCRATCH0));
                let n = emit_src(t, *new, Reg(SCRATCH1));
                with_site!(|s| { t.await_cas(*dst, *loc, e, n, s); });
            }
            PlannedOp::Fence => {
                with_site!(|s| { t.fence(s); });
            }
        }
    }
}

/// Every use of a named annotation must agree on kind and mode — named
/// sites are shared, and the builder treats disagreement as a caller bug
/// (panic). Check up front and fail with a [`TraceError`] instead.
fn check_site_consistency(trace: &Trace) -> Result<(), TraceError> {
    let mut seen: BTreeMap<&str, (SiteKind, Mode)> = BTreeMap::new();
    for t in &trace.threads {
        for e in &t.ops {
            if let Some(name) = &e.site {
                let sig = (e.op.site_kind(), e.op.mode());
                match seen.get(name.as_str()) {
                    None => {
                        seen.insert(name, sig);
                    }
                    Some(prev) if *prev == sig => {}
                    Some(_) => return Err(TraceError::SiteConflict { name: name.clone() }),
                }
            }
        }
    }
    Ok(())
}

/// Lower a recorded [`Trace`] into a checkable [`Program`].
///
/// Spin-tagged poll runs collapse into native `Await` instructions;
/// threads of one template are unified into identical code (so the
/// builder's symmetry detection declares them interchangeable); input
/// values are re-derived from earlier reads where the cross-thread
/// evidence supports it, and stay immediates otherwise.
///
/// # Errors
///
/// See [`TraceError`]. On [`TraceError::TemplateMismatch`], callers may
/// [`Trace::clear_templates`] and retry to lower the threads independently.
pub fn lower(trace: &Trace) -> Result<Program, TraceError> {
    check_site_consistency(trace)?;
    let groups = group_threads(trace)?;
    let mut plans: Vec<Option<&[Planned]>> = vec![None; trace.threads.len()];
    let mut storage: Vec<Vec<Planned>> = Vec::with_capacity(groups.len());
    for g in &groups {
        storage.push(plan_group(g)?);
    }
    for (g, plan) in groups.iter().zip(&storage) {
        for &m in &g.members {
            plans[m] = Some(plan);
        }
    }
    let mut pb = ProgramBuilder::new(&trace.name);
    for (&loc, &v) in &trace.init {
        pb.init(loc, v);
    }
    for (loc, v, msg) in &trace.final_checks {
        pb.final_check(*loc, Test::eq(*v), msg);
    }
    for plan in plans {
        let plan = plan.expect("every thread belongs to a group");
        pb.thread(|t| emit(t, plan));
    }
    Ok(pb.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Instr;

    const LOCK: Loc = 0x10;
    const COUNTER: Loc = 0x20;

    fn entry(op: TraceOp, spin: bool) -> TraceEntry {
        TraceEntry { op, site: None, spin }
    }

    fn load(loc: Loc, value: Value, spin: bool) -> TraceEntry {
        entry(TraceOp::Load { loc, mode: Mode::Acq, value }, spin)
    }

    #[test]
    fn spin_run_collapses_to_await_load() {
        // while lock.load() != 0 {} recorded as polls 1,1,0.
        let t = ThreadTrace {
            ops: vec![load(LOCK, 1, true), load(LOCK, 1, true), load(LOCK, 0, true)],
            template: None,
        };
        let trace = Trace { name: "spin".into(), threads: vec![t], ..Default::default() };
        let p = lower(&trace).unwrap();
        assert_eq!(p.thread_code(0).len(), 1);
        assert!(matches!(p.thread_code(0)[0], Instr::AwaitLoad { .. }));
    }

    #[test]
    fn unterminated_spin_is_rejected() {
        let t = ThreadTrace { ops: vec![load(LOCK, 1, true), load(LOCK, 1, true)], template: None };
        let trace = Trace { name: "stuck".into(), threads: vec![t], ..Default::default() };
        assert!(matches!(lower(&trace), Err(TraceError::UnterminatedSpin { thread: 0, entry: 0 })));
    }

    #[test]
    fn plain_loads_do_not_collapse() {
        let t = ThreadTrace {
            ops: vec![load(LOCK, 1, false), load(LOCK, 1, false)],
            template: None,
        };
        let trace = Trace { name: "two-loads".into(), threads: vec![t], ..Default::default() };
        let p = lower(&trace).unwrap();
        assert_eq!(p.thread_code(0).len(), 2);
    }

    #[test]
    fn template_promotes_fast_path_to_await() {
        // Thread 0 acquired a CAS lock first try; thread 1 spun. Both must
        // lower to await_cas, and the builder must declare them symmetric.
        let cas = |old: Value, spin: bool| {
            entry(TraceOp::Cas { loc: LOCK, mode: Mode::Acq, expected: 0, new: 1, old }, spin)
        };
        let t0 = ThreadTrace { ops: vec![cas(0, false)], template: Some(0) };
        let t1 = ThreadTrace { ops: vec![cas(1, true), cas(1, true), cas(0, true)], template: Some(0) };
        let trace = Trace { name: "cas".into(), threads: vec![t0, t1], ..Default::default() };
        let p = lower(&trace).unwrap();
        for t in 0..2 {
            assert_eq!(p.thread_code(t).len(), 1, "thread {t}");
            assert!(matches!(p.thread_code(t)[0], Instr::AwaitCas { .. }));
        }
        assert!(p.symmetry_partition().same_class(0, 1));
    }

    #[test]
    fn cross_thread_delta_recovers_register_dataflow() {
        // Ticket-style: r = fetch_add(tickets, 1); await owner == r.
        // Thread 0 drew 0, thread 1 drew 1: the awaited value tracks the
        // ticket exactly, so the exit condition must be the register, not
        // the constants 0/1.
        let tickets: Loc = 0x30;
        let fai = |old: Value| {
            entry(TraceOp::Rmw { loc: tickets, mode: Mode::Rlx, op: RmwOp::Add, operand: 1, old }, false)
        };
        let t0 = ThreadTrace { ops: vec![fai(0), load(LOCK, 0, false)], template: Some(0) };
        let t1 = ThreadTrace {
            ops: vec![fai(1), load(LOCK, 0, true), load(LOCK, 0, true), load(LOCK, 1, true)],
            template: Some(0),
        };
        let trace = Trace { name: "ticket".into(), threads: vec![t0, t1], ..Default::default() };
        let p = lower(&trace).unwrap();
        for t in 0..2 {
            match &p.thread_code(t)[1] {
                Instr::AwaitLoad { until, .. } => {
                    assert_eq!(until.rhs, Operand::Reg(Reg(0)), "thread {t} awaits its ticket")
                }
                other => panic!("thread {t}: expected await, got {other:?}"),
            }
        }
        assert!(p.symmetry_partition().same_class(0, 1));
    }

    #[test]
    fn cross_thread_delta_recovers_increment_stores() {
        // CS body: r = load(counter); store(counter, r + 1). Thread 0 saw
        // 0→1, thread 1 saw 1→2: uniform delta 1 over the load.
        let t = |seen: Value| ThreadTrace {
            ops: vec![
                entry(TraceOp::Load { loc: COUNTER, mode: Mode::Rlx, value: seen }, false),
                entry(TraceOp::Store { loc: COUNTER, mode: Mode::Rlx, value: seen + 1 }, false),
            ],
            template: Some(0),
        };
        let trace = Trace { name: "incr".into(), threads: vec![t(0), t(1)], ..Default::default() };
        let p = lower(&trace).unwrap();
        let code = p.thread_code(0);
        assert_eq!(code.len(), 3, "load, scratch add, store");
        assert!(matches!(code[1], Instr::Op { .. }));
        match &code[2] {
            Instr::Store { src, .. } => assert_eq!(*src, Operand::Reg(Reg(SCRATCH0))),
            other => panic!("expected store, got {other:?}"),
        }
    }

    #[test]
    fn singleton_increment_uses_same_loc_heuristic() {
        let t = ThreadTrace {
            ops: vec![
                entry(TraceOp::Load { loc: COUNTER, mode: Mode::Rlx, value: 5 }, false),
                entry(TraceOp::Store { loc: COUNTER, mode: Mode::Rlx, value: 6 }, false),
            ],
            template: None,
        };
        let mut trace = Trace { name: "one".into(), threads: vec![t], ..Default::default() };
        trace.init.insert(COUNTER, 5);
        let p = lower(&trace).unwrap();
        assert!(matches!(p.thread_code(0)[1], Instr::Op { .. }), "derived, not Imm(6)");
    }

    #[test]
    fn template_mismatch_reports_threads_and_falls_back() {
        let t0 = ThreadTrace { ops: vec![load(LOCK, 0, false)], template: Some(3) };
        let t1 = ThreadTrace {
            ops: vec![entry(TraceOp::Store { loc: LOCK, mode: Mode::Rel, value: 1 }, false)],
            template: Some(3),
        };
        let mut trace = Trace { name: "diverge".into(), threads: vec![t0, t1], ..Default::default() };
        match lower(&trace) {
            Err(TraceError::TemplateMismatch { class: 3, threads: (0, 1), position: Some(0) }) => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
        trace.clear_templates();
        let p = lower(&trace).unwrap();
        assert_eq!(p.num_threads(), 2);
    }

    #[test]
    fn annotations_become_named_relaxable_sites() {
        let mut e = load(LOCK, 0, false);
        e.site = Some("lock.poll".into());
        let trace = Trace {
            name: "sites".into(),
            threads: vec![
                ThreadTrace { ops: vec![e.clone()], template: Some(0) },
                ThreadTrace { ops: vec![e], template: Some(0) },
            ],
            ..Default::default()
        };
        let p = lower(&trace).unwrap();
        let named: Vec<_> = p.sites().iter().filter(|s| s.name == "lock.poll").collect();
        assert_eq!(named.len(), 1, "shared across threads");
        assert!(named[0].relaxable);
    }

    #[test]
    fn unannotated_ops_are_fixed() {
        let trace = Trace {
            name: "fixed".into(),
            threads: vec![ThreadTrace { ops: vec![load(LOCK, 0, false)], template: None }],
            ..Default::default()
        };
        let p = lower(&trace).unwrap();
        assert!(!p.sites()[0].relaxable);
    }

    #[test]
    fn site_kind_conflicts_are_rejected() {
        let mut a = load(LOCK, 0, false);
        a.site = Some("s".into());
        let mut b = entry(TraceOp::Store { loc: LOCK, mode: Mode::Acq, value: 1 }, false);
        b.site = Some("s".into());
        let trace = Trace {
            name: "conflict".into(),
            threads: vec![ThreadTrace { ops: vec![a, b], template: None }],
            ..Default::default()
        };
        assert!(matches!(lower(&trace), Err(TraceError::SiteConflict { .. })));
    }

    #[test]
    fn init_and_final_checks_flow_through() {
        let mut trace = Trace {
            name: "fc".into(),
            threads: vec![ThreadTrace {
                ops: vec![entry(TraceOp::Store { loc: COUNTER, mode: Mode::Rlx, value: 7 }, false)],
                template: None,
            }],
            ..Default::default()
        };
        trace.init.insert(COUNTER, 3);
        trace.final_checks.push((COUNTER, 7, "stored".into()));
        let p = lower(&trace).unwrap();
        assert_eq!(p.init().get(&COUNTER), Some(&3));
        assert_eq!(p.final_checks().len(), 1);
    }
}
