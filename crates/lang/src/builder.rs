//! Builders for programs and threads.
//!
//! The builder is the ergonomic front-end of the language: it manages
//! labels (forward and backward), auto-names barrier sites, and — crucially
//! for the optimizer — lets several threads *share* a site by giving it the
//! same name, mirroring how all threads of a real lock run the same source
//! code and therefore the same barrier annotations.

use std::collections::BTreeMap;
use std::collections::HashMap;

use vsync_graph::{Loc, Mode, Value};

use crate::insn::{Addr, AluOp, Instr, ModeRef, Operand, Reg, RmwOp, Test};
use crate::program::{BarrierSite, FinalCheck, Program, ProgramError, SiteKind};

/// Specification of a barrier site for one instruction: a bare [`Mode`]
/// (auto-named, relaxable), a `(name, Mode)` pair (named, relaxable,
/// shared across threads by name), or [`Fixed`] (excluded from
/// optimization).
pub trait IntoSite {
    /// Destructure into `(name, mode, relaxable)`; `None` name = auto.
    fn into_site(self) -> (Option<String>, Mode, bool);
}

impl IntoSite for Mode {
    fn into_site(self) -> (Option<String>, Mode, bool) {
        (None, self, true)
    }
}

impl IntoSite for (&str, Mode) {
    fn into_site(self) -> (Option<String>, Mode, bool) {
        (Some(self.0.to_owned()), self.1, true)
    }
}

/// A barrier mode the optimizer must not touch (e.g. client code).
#[derive(Debug, Clone, Copy)]
pub struct Fixed(pub Mode);

impl IntoSite for Fixed {
    fn into_site(self) -> (Option<String>, Mode, bool) {
        (None, self.0, false)
    }
}

/// A branch label handle created by [`ThreadBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// A site registration before assembly: (name?, kind, mode, relaxable).
type SiteProto = (Option<String>, SiteKind, Mode, bool);

/// Builds the code of one thread.
#[derive(Debug)]
pub struct ThreadBuilder {
    thread: u32,
    code: Vec<Instr>,
    /// Local site registrations: (name?, kind, mode, relaxable).
    sites: Vec<SiteProto>,
    labels: Vec<Option<usize>>,
    patches: Vec<(usize, Label)>,
}

impl ThreadBuilder {
    fn new(thread: u32) -> Self {
        ThreadBuilder { thread, code: Vec::new(), sites: Vec::new(), labels: Vec::new(), patches: Vec::new() }
    }

    /// The thread index being built.
    pub fn id(&self) -> u32 {
        self.thread
    }

    /// Current instruction count (the pc the next instruction will get).
    pub fn here(&self) -> usize {
        self.code.len()
    }

    fn site(&mut self, kind: SiteKind, spec: impl IntoSite) -> ModeRef {
        let (name, mode, relaxable) = spec.into_site();
        self.sites.push((name, kind, mode, relaxable));
        // Local index; remapped to the global table when the thread is added.
        ModeRef((self.sites.len() - 1) as u32)
    }

    /// `dst = load(addr)`.
    pub fn load(&mut self, dst: Reg, addr: impl Into<Addr>, site: impl IntoSite) -> &mut Self {
        let mode = self.site(SiteKind::Load, site);
        self.code.push(Instr::Load { dst, addr: addr.into(), mode });
        self
    }

    /// `store(addr, src)`.
    pub fn store(
        &mut self,
        addr: impl Into<Addr>,
        src: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        let mode = self.site(SiteKind::Store, site);
        self.code.push(Instr::Store { addr: addr.into(), src: src.into(), mode });
        self
    }

    /// `dst = rmw(addr, op, operand)`; `dst` receives the old value.
    pub fn rmw(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        op: RmwOp,
        operand: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        let mode = self.site(SiteKind::Rmw, site);
        self.code.push(Instr::Rmw { dst, addr: addr.into(), op, operand: operand.into(), mode });
        self
    }

    /// `dst = xchg(addr, v)`.
    pub fn xchg(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        v: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        self.rmw(dst, addr, RmwOp::Xchg, v, site)
    }

    /// `dst = fetch_add(addr, v)`.
    pub fn fetch_add(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        v: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        self.rmw(dst, addr, RmwOp::Add, v, site)
    }

    /// `dst = fetch_sub(addr, v)`.
    pub fn fetch_sub(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        v: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        self.rmw(dst, addr, RmwOp::Sub, v, site)
    }

    /// `dst = fetch_or(addr, v)`.
    pub fn fetch_or(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        v: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        self.rmw(dst, addr, RmwOp::Or, v, site)
    }

    /// `dst = cas(addr, expected, new)`; `dst` receives the old value.
    pub fn cas(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        expected: impl Into<Operand>,
        new: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        let mode = self.site(SiteKind::Rmw, site);
        self.code.push(Instr::Cas {
            dst,
            addr: addr.into(),
            expected: expected.into(),
            new: new.into(),
            mode,
        });
        self
    }

    /// A memory fence.
    pub fn fence(&mut self, site: impl IntoSite) -> &mut Self {
        let mode = self.site(SiteKind::Fence, site);
        self.code.push(Instr::Fence { mode });
        self
    }

    /// `dst = await_load(addr) until test(v)`.
    pub fn await_load(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        until: Test,
        site: impl IntoSite,
    ) -> &mut Self {
        let mode = self.site(SiteKind::Load, site);
        self.code.push(Instr::AwaitLoad { dst, addr: addr.into(), until, mode });
        self
    }

    /// `dst = await_eq(addr, v)` — poll until the location equals `v`.
    pub fn await_eq(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        v: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        self.await_load(dst, addr, Test::eq(v), site)
    }

    /// `dst = await_neq(addr, v)` — poll until the location differs from `v`.
    pub fn await_neq(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        v: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        self.await_load(dst, addr, Test::ne(v), site)
    }

    /// `dst = await_rmw(addr, op, operand) until test(old)` — e.g. the
    /// paper's `await_while (atomic_xchg(&lock, 1) != 0)` is
    /// `await_rmw(lock, Xchg, 1, until old == 0)`.
    pub fn await_rmw(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        until: Test,
        op: RmwOp,
        operand: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        let mode = self.site(SiteKind::Rmw, site);
        self.code.push(Instr::AwaitRmw {
            dst,
            addr: addr.into(),
            until,
            op,
            operand: operand.into(),
            mode,
        });
        self
    }

    /// `dst = await_cas(addr, expected, new)`.
    pub fn await_cas(
        &mut self,
        dst: Reg,
        addr: impl Into<Addr>,
        expected: impl Into<Operand>,
        new: impl Into<Operand>,
        site: impl IntoSite,
    ) -> &mut Self {
        let mode = self.site(SiteKind::Rmw, site);
        self.code.push(Instr::AwaitCas {
            dst,
            addr: addr.into(),
            expected: expected.into(),
            new: new.into(),
            mode,
        });
        self
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.code.push(Instr::Mov { dst, src: src.into() });
        self
    }

    /// `dst = a op b`.
    pub fn op(
        &mut self,
        dst: Reg,
        op: AluOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.code.push(Instr::Op { dst, op, a: a.into(), b: b.into() });
        self
    }

    /// `dst = a + b`.
    pub fn add(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.op(dst, AluOp::Add, a, b)
    }

    /// Create a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind a label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, l: Label) -> &mut Self {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len());
        self
    }

    /// Create a label bound right here (for backward jumps).
    pub fn here_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Unconditional jump to a label.
    pub fn jmp(&mut self, l: Label) -> &mut Self {
        self.patches.push((self.code.len(), l));
        self.code.push(Instr::Jmp { target: usize::MAX });
        self
    }

    /// Jump to `l` when `test(src)` holds.
    pub fn jmp_if(&mut self, src: impl Into<Operand>, test: Test, l: Label) -> &mut Self {
        self.patches.push((self.code.len(), l));
        self.code.push(Instr::JmpIf { src: src.into(), test, target: usize::MAX });
        self
    }

    /// Assert `test(src)`; generates an error event on failure.
    pub fn assert(&mut self, src: impl Into<Operand>, test: Test, msg: &str) -> &mut Self {
        self.code.push(Instr::Assert { src: src.into(), test, msg: msg.to_owned() });
        self
    }

    /// Assert `src == v`.
    pub fn assert_eq(&mut self, src: impl Into<Operand>, v: impl Into<Operand>, msg: &str) -> &mut Self {
        self.assert(src, Test { mask: None, cmp: crate::insn::Cmp::Eq, rhs: v.into() }, msg)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.code.push(Instr::Nop);
        self
    }

    fn finish(mut self) -> (Vec<Instr>, Vec<SiteProto>) {
        for (pc, l) in std::mem::take(&mut self.patches) {
            let target = self.labels[l.0].unwrap_or_else(|| panic!("label {} never bound", l.0));
            match &mut self.code[pc] {
                Instr::Jmp { target: t } | Instr::JmpIf { target: t, .. } => *t = target,
                _ => unreachable!(),
            }
        }
        (self.code, self.sites)
    }
}

/// Builds a complete [`Program`].
///
/// ```
/// use vsync_lang::{ProgramBuilder, Reg, Test};
/// use vsync_graph::Mode;
///
/// let mut pb = ProgramBuilder::new("spinner");
/// pb.init(0x10, 0);
/// pb.thread(|t| {
///     t.store(0x10, 1u64, ("release", Mode::Rel));
/// });
/// pb.thread(|t| {
///     t.await_eq(Reg(0), 0x10, 1u64, ("poll", Mode::Acq));
/// });
/// let program = pb.build().expect("well-formed");
/// assert_eq!(program.num_threads(), 2);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    threads: Vec<Vec<Instr>>,
    sites: Vec<BarrierSite>,
    by_name: HashMap<String, u32>,
    init: BTreeMap<Loc, Value>,
    final_checks: Vec<FinalCheck>,
}

impl ProgramBuilder {
    /// Start building a program.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_owned(),
            threads: Vec::new(),
            sites: Vec::new(),
            by_name: HashMap::new(),
            init: BTreeMap::new(),
            final_checks: Vec::new(),
        }
    }

    /// Set the initial value of a location (default 0).
    pub fn init(&mut self, loc: Loc, val: Value) -> &mut Self {
        self.init.insert(loc, val);
        self
    }

    /// Add a final-state check: `test(final value of loc)` must hold in
    /// every complete execution.
    pub fn final_check(&mut self, loc: Loc, test: Test, msg: &str) -> &mut Self {
        self.final_checks.push(FinalCheck { loc, test, msg: msg.to_owned() });
        self
    }

    /// Add a thread, building its code in the closure.
    pub fn thread(&mut self, f: impl FnOnce(&mut ThreadBuilder)) -> &mut Self {
        let id = self.threads.len() as u32;
        let mut tb = ThreadBuilder::new(id);
        f(&mut tb);
        let (mut code, local_sites) = tb.finish();
        // Remap local site refs to the global table, sharing named sites.
        let mut remap = Vec::with_capacity(local_sites.len());
        for (li, (name, kind, mode, relaxable)) in local_sites.into_iter().enumerate() {
            let global = match &name {
                Some(n) => {
                    if let Some(&g) = self.by_name.get(n) {
                        let existing = &self.sites[g as usize];
                        assert_eq!(
                            existing.kind, kind,
                            "site {n} registered with different kinds"
                        );
                        assert_eq!(
                            existing.mode, mode,
                            "site {n} registered with different modes"
                        );
                        g
                    } else {
                        let g = self.sites.len() as u32;
                        self.by_name.insert(n.clone(), g);
                        self.sites.push(BarrierSite {
                            name: n.clone(),
                            kind,
                            mode,
                            relaxable,
                            thread: id,
                            pc: 0,
                        });
                        g
                    }
                }
                None => {
                    let g = self.sites.len() as u32;
                    self.sites.push(BarrierSite {
                        name: format!("{}.t{id}.s{li}", self.name),
                        kind,
                        mode,
                        relaxable,
                        thread: id,
                        pc: 0,
                    });
                    g
                }
            };
            remap.push(global);
        }
        for (pc, instr) in code.iter_mut().enumerate() {
            if let Some(local) = instr.mode_ref() {
                let global = ModeRef(remap[local.0 as usize]);
                let site = &mut self.sites[global.0 as usize];
                if site.thread == id {
                    site.pc = pc;
                }
                instr.set_mode_ref(global);
            }
        }
        self.threads.push(code);
        self
    }

    /// Finish and validate the program.
    ///
    /// Threads built from the same template — identical instruction
    /// sequences once barrier sites are resolved to modes, exactly what
    /// the generic lock client's per-thread emission produces — are
    /// detected here and *declared* as the program's thread-symmetry
    /// partition ([`Program::declare_symmetry`]), which symmetry-aware
    /// explorers use to prune relabeled twin executions.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] for malformed programs (bad jump targets,
    /// registers, or mode/kind mismatches).
    pub fn build(&mut self) -> Result<Program, ProgramError> {
        let mut p = Program::from_parts(
            std::mem::take(&mut self.name),
            std::mem::take(&mut self.threads),
            std::mem::take(&mut self.sites),
            std::mem::take(&mut self.init),
            std::mem::take(&mut self.final_checks),
        );
        p.validate()?;
        p.declare_symmetry(p.symmetry_partition());
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_sites_are_shared_across_threads() {
        let mut pb = ProgramBuilder::new("p");
        for _ in 0..2 {
            pb.thread(|t| {
                t.store(0x10, 1u64, ("same", Mode::Rel));
                t.load(Reg(0), 0x10, Mode::Acq); // auto-named: unique
            });
        }
        let p = pb.build().unwrap();
        // One shared named site + two auto-named loads.
        assert_eq!(p.sites().len(), 3);
        assert_eq!(p.sites().iter().filter(|s| s.name == "same").count(), 1);
    }

    #[test]
    fn fixed_sites_are_not_relaxable() {
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            t.load(Reg(0), 0x10, Fixed(Mode::Rlx));
        });
        let p = pb.build().unwrap();
        assert!(!p.sites()[0].relaxable);
        // with_all_sc leaves it alone.
        assert_eq!(p.with_all_sc().sites()[0].mode, Mode::Rlx);
    }

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            let head = t.here_label();
            let out = t.label();
            t.load(Reg(0), 0x10, Mode::Rlx);
            t.jmp_if(Reg(0), Test::eq(1u64), out);
            t.jmp(head);
            t.bind(out);
            t.nop();
        });
        let p = pb.build().unwrap();
        let code = p.thread_code(0);
        assert!(matches!(code[1], Instr::JmpIf { target: 3, .. }));
        assert!(matches!(code[2], Instr::Jmp { target: 0 }));
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            let l = t.label();
            t.jmp(l);
        });
    }

    #[test]
    fn init_and_final_checks_carried_over() {
        let mut pb = ProgramBuilder::new("p");
        pb.init(0x10, 5);
        pb.final_check(0x10, Test::eq(5u64), "untouched");
        pb.thread(|t| {
            t.nop();
        });
        let p = pb.build().unwrap();
        assert_eq!(p.init().get(&0x10), Some(&5));
        assert_eq!(p.final_checks().len(), 1);
    }

    #[test]
    fn build_declares_template_symmetry() {
        // Two template threads (auto-named sites, equal modes) + one that
        // stores a different value: {0, 2} symmetric, 1 alone.
        let mut pb = ProgramBuilder::new("p");
        for val in [1u64, 9, 1] {
            pb.thread(move |t| {
                t.store(0x10, val, Mode::Rel);
                t.load(Reg(0), 0x10, Mode::Acq);
            });
        }
        let p = pb.build().unwrap();
        let declared = p.declared_symmetry().expect("builder declares the partition");
        assert!(declared.same_class(0, 2));
        assert!(!declared.same_class(0, 1));
        assert_eq!(&p.symmetry_partition(), declared);
    }

    #[test]
    fn mode_divergence_splits_detected_symmetry() {
        use crate::insn::ModeRef;
        let mut pb = ProgramBuilder::new("p");
        for _ in 0..2 {
            pb.thread(|t| {
                t.store(0x10, 1u64, Mode::Rel); // auto-named: one site per thread
            });
        }
        let mut p = pb.build().unwrap();
        assert!(p.symmetry_partition().same_class(0, 1));
        // Relax only thread 1's site: the threads' resolved code diverges
        // and the recomputed partition must split them, declaration or no.
        p.set_mode(ModeRef(1), Mode::Rlx);
        assert!(p.symmetry_partition().is_trivial());
    }

    #[test]
    #[should_panic(expected = "different modes")]
    fn shared_site_mode_conflict_panics() {
        let mut pb = ProgramBuilder::new("p");
        pb.thread(|t| {
            t.store(0x10, 1u64, ("s", Mode::Rel));
        });
        pb.thread(|t| {
            t.store(0x10, 1u64, ("s", Mode::Rlx));
        });
    }
}
