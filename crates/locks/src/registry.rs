//! Name-based registry of the verifiable lock catalog.
//!
//! Every model-layer lock is registered here once, with its canonical
//! name (the same string its [`LockModel::name`] reports) and catalog
//! metadata. The registry is what makes the push-button surface
//! *addressable*: CLI commands, services and the bench drivers resolve
//! locks [`by_name`] instead of re-listing the catalog by hand, and
//! [`SessionExt::lock`] turns a name straight into a runnable
//! [`Session`].
//!
//! ```
//! use vsync_core::Session;
//! use vsync_locks::SessionExt as _;
//!
//! let report = Session::lock("ttas", 2, 1).run();
//! assert!(report.is_verified());
//! ```

use std::fmt;

use vsync_core::Session;
use vsync_graph::ThreadPartition;
use vsync_lang::Program;

use crate::model::{
    mutex_client, ArrayLock, CasLock, CertikosMcs, ClhLock, DpdkMcsLock, FutexMutex,
    HuaweiMcsLock, LockModel, McsLock, Qspinlock, RecursiveLock, RwLock, Semaphore, TasLock,
    TicketLock, TtasLock, TwaLock,
};

/// One registry row: the canonical name, catalog metadata and a
/// constructor for the lock with its default (published) barriers.
pub struct LockEntry {
    /// Canonical name — always equal to the built lock's
    /// [`LockModel::name`].
    pub name: &'static str,
    /// Structural family, for catalog listings.
    pub family: &'static str,
    /// One-line description.
    pub summary: &'static str,
    build: fn() -> Box<dyn LockModel>,
}

impl LockEntry {
    /// Instantiate the lock with its default barrier assignment.
    #[must_use]
    pub fn build(&self) -> Box<dyn LockModel> {
        (self.build)()
    }

    /// The paper's generic mutual-exclusion client over this lock:
    /// `threads` threads, `acquires` acquisitions each, with the
    /// lost-update final-state check.
    #[must_use]
    pub fn client(&self, threads: usize, acquires: usize) -> Program {
        mutex_client(self.build().as_ref(), threads, acquires)
    }

    /// The thread-symmetry partition of this lock's generic client: flat
    /// locks emit one shared template per thread (all clients
    /// interchangeable — a single class), while queue locks address
    /// per-thread nodes and stay asymmetric. The explorer prunes relabeled
    /// twin executions for every non-singleton class.
    #[must_use]
    pub fn client_symmetry(&self, threads: usize, acquires: usize) -> ThreadPartition {
        self.client(threads, acquires).symmetry_partition()
    }

    /// Does the generic client of this lock have any usable thread
    /// symmetry (at any thread count ≥ 2)?
    #[must_use]
    pub fn symmetric_client(&self) -> bool {
        !self.client_symmetry(2, 1).is_trivial()
    }
}

impl fmt::Debug for LockEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockEntry")
            .field("name", &self.name)
            .field("family", &self.family)
            .finish()
    }
}

macro_rules! entry {
    ($name:literal, $family:literal, $summary:literal, $build:expr) => {
        LockEntry { name: $name, family: $family, summary: $summary, build: || Box::new($build) }
    };
}

static CATALOG: [LockEntry; 16] = [
    entry!("caslock", "flat", "compare-and-swap test-and-set lock", CasLock::default()),
    entry!(
        "taslock",
        "flat",
        "test-and-set lock (awaited xchg; vsync-shim's TAS twin)",
        TasLock::default()
    ),
    entry!("ttas", "flat", "test-and-test-and-set lock (paper Fig. 3)", TtasLock::default()),
    entry!(
        "ticketlock",
        "ticket",
        "FIFO ticket lock (fetch-add next, await owner)",
        TicketLock::default()
    ),
    entry!("semaphore", "flat", "binary semaphore via fetch-sub/add", Semaphore::default()),
    entry!("mcs", "queue", "MCS queue lock (per-thread spin nodes)", McsLock::default()),
    entry!(
        "certikos-mcs",
        "queue",
        "CertiKOS's MCS variant (busy-flag handshake)",
        CertikosMcs
    ),
    entry!("clh", "queue", "CLH queue lock (implicit predecessor nodes)", ClhLock::default()),
    entry!(
        "dpdk-mcs-fixed",
        "queue",
        "DPDK rte_mcslock with the §3.1 publication fix",
        DpdkMcsLock::patched()
    ),
    entry!(
        "huawei-mcs-fixed",
        "queue",
        "Huawei-product MCS with the §3.2 acquire fix",
        HuaweiMcsLock::patched()
    ),
    entry!(
        "rwlock",
        "rw",
        "reader-writer lock (writer-preference counter)",
        RwLock::default()
    ),
    entry!(
        "qspinlock",
        "queue",
        "Linux qspinlock (pending bit + MCS tail), §3.3 study case",
        Qspinlock
    ),
    entry!(
        "arraylock",
        "array",
        "Anderson array lock (per-slot spinning)",
        ArrayLock::default()
    ),
    entry!(
        "twalock",
        "ticket",
        "ticket lock with waiting array (TWA)",
        TwaLock::default()
    ),
    entry!(
        "recursive",
        "composite",
        "owner-reentrant recursive lock over a CAS core",
        RecursiveLock::default()
    ),
    entry!(
        "futex-mutex",
        "composite",
        "futex-style mutex (fast path + wait word)",
        FutexMutex::default()
    ),
];

/// The full catalog, in presentation order.
#[must_use]
pub fn catalog() -> &'static [LockEntry] {
    &CATALOG
}

/// One row of the standard 11-entry performance matrix: a registered lock
/// with a client configuration small enough to explore exhaustively but
/// large enough to exercise the interesting paths.
#[derive(Debug, Clone, Copy)]
pub struct MatrixEntry {
    /// Stable row label (kept diffable across PRs in the BENCH_*.json
    /// artifacts).
    pub label: &'static str,
    /// Registry name of the lock.
    pub lock: &'static str,
    /// Client threads.
    pub threads: usize,
    /// Acquisitions per thread.
    pub acquires: usize,
}

impl MatrixEntry {
    /// Build the row's generic mutual-exclusion client.
    ///
    /// # Panics
    /// If the row names an unregistered lock (a bug in the matrix table).
    #[must_use]
    pub fn client(&self) -> Program {
        entry(self.lock)
            .unwrap_or_else(|| panic!("{} not registered", self.lock))
            .client(self.threads, self.acquires)
    }

    /// Does this row's client have a non-trivial thread-symmetry
    /// partition (so symmetry reduction can prune twins on it)?
    ///
    /// # Panics
    /// If the row names an unregistered lock (a bug in the matrix table).
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        !self.client().symmetry_partition().is_trivial()
    }
}

/// The standard lock matrix shared by the `explore_perf` and
/// `optimize_perf` benches, CI smoke checks and the strategy-differential
/// tests — the "11-entry lock matrix" of the perf acceptance criteria.
/// Row labels are stable so the JSON artifacts stay diffable across PRs.
#[must_use]
pub fn perf_matrix() -> &'static [MatrixEntry] {
    const M: &[MatrixEntry] = &[
        MatrixEntry { label: "caslock-2t", lock: "caslock", threads: 2, acquires: 1 },
        MatrixEntry { label: "caslock-3t", lock: "caslock", threads: 3, acquires: 1 },
        MatrixEntry { label: "ttas-2t", lock: "ttas", threads: 2, acquires: 1 },
        MatrixEntry { label: "ttas-2tx2", lock: "ttas", threads: 2, acquires: 2 },
        MatrixEntry { label: "ticket-2t", lock: "ticketlock", threads: 2, acquires: 1 },
        MatrixEntry { label: "ticket-3t", lock: "ticketlock", threads: 3, acquires: 1 },
        MatrixEntry { label: "clh-2t", lock: "clh", threads: 2, acquires: 1 },
        MatrixEntry { label: "mcs-2t", lock: "mcs", threads: 2, acquires: 1 },
        MatrixEntry { label: "mcs-3t", lock: "mcs", threads: 3, acquires: 1 },
        MatrixEntry { label: "qspinlock-2t", lock: "qspinlock", threads: 2, acquires: 1 },
        MatrixEntry { label: "qspinlock-3t", lock: "qspinlock", threads: 3, acquires: 1 },
    ];
    M
}

/// The rows of [`perf_matrix`] whose clients have a non-trivial
/// thread-symmetry partition — the "symmetric lock matrix" of the
/// `symmetry_perf` bench and its CI smoke (which asserts the ≥ 2x
/// explored-graph reduction on the 3-thread rows).
#[must_use]
pub fn symmetric_matrix() -> Vec<MatrixEntry> {
    perf_matrix().iter().copied().filter(MatrixEntry::is_symmetric).collect()
}

/// The canonical names of every registered lock, in catalog order.
#[must_use]
pub fn names() -> Vec<&'static str> {
    CATALOG.iter().map(|e| e.name).collect()
}

/// The registry row for `name`, if registered.
#[must_use]
pub fn entry(name: &str) -> Option<&'static LockEntry> {
    CATALOG.iter().find(|e| e.name == name)
}

/// Instantiate a lock by canonical name with its default barriers.
#[must_use]
pub fn by_name(name: &str) -> Option<Box<dyn LockModel>> {
    entry(name).map(LockEntry::build)
}

/// The error of [`SessionExt::try_lock`]: no such lock in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownLock {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown lock '{}' (known: {})", self.name, names().join(", "))
    }
}

impl std::error::Error for UnknownLock {}

/// Registry-powered constructors for [`Session`]: bring this trait into
/// scope and `Session::lock("qspinlock", 3, 1)` builds a session over the
/// generic client of the named lock.
pub trait SessionExt: Sized {
    /// Session over the named lock's generic client (`threads` threads ×
    /// `acquires` acquisitions, lost-update final check).
    ///
    /// # Panics
    /// On an unregistered name, listing the registered ones — this is the
    /// push-button entry point; use [`SessionExt::try_lock`] in services.
    fn lock(name: &str, threads: usize, acquires: usize) -> Self;

    /// Non-panicking [`SessionExt::lock`].
    fn try_lock(name: &str, threads: usize, acquires: usize) -> Result<Self, UnknownLock>;
}

impl SessionExt for Session {
    fn lock(name: &str, threads: usize, acquires: usize) -> Session {
        match Self::try_lock(name, threads, acquires) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    fn try_lock(name: &str, threads: usize, acquires: usize) -> Result<Session, UnknownLock> {
        let entry = entry(name).ok_or_else(|| UnknownLock { name: name.to_owned() })?;
        Ok(Session::new(entry.client(threads, acquires)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flat locks share one client template across threads; queue locks
    /// address per-thread nodes. The detector must see exactly that.
    #[test]
    fn flat_clients_are_symmetric_queue_clients_are_not() {
        for name in ["caslock", "ttas", "ticketlock", "semaphore"] {
            let e = entry(name).unwrap();
            assert!(e.symmetric_client(), "{name} client should be symmetric");
            let p = e.client_symmetry(3, 1);
            assert!(p.same_class(0, 1) && p.same_class(1, 2), "{name}: one 3-thread class");
        }
        for name in ["mcs", "clh", "qspinlock"] {
            let e = entry(name).unwrap();
            assert!(!e.symmetric_client(), "{name} client uses per-thread nodes");
        }
    }

    #[test]
    fn symmetric_matrix_is_the_symmetric_subset() {
        let sym = symmetric_matrix();
        assert!(!sym.is_empty());
        assert!(sym.iter().all(MatrixEntry::is_symmetric));
        assert!(
            sym.iter().any(|e| e.threads >= 3),
            "the 3-thread acceptance rows must be present"
        );
        let labels: Vec<&str> = sym.iter().map(|e| e.label).collect();
        assert!(labels.contains(&"caslock-3t"), "got {labels:?}");
        assert!(labels.contains(&"ticket-3t"), "got {labels:?}");
        assert!(!labels.contains(&"qspinlock-3t"), "queue locks are asymmetric");
    }
}
