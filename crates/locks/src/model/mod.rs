//! Model-checked lock algorithms (verified and optimized by AMC).
//!
//! Every lock implements [`LockModel`]; [`mutex_client`] wraps any of them
//! in the paper's generic client (acquire; `counter++`; release) with a
//! lost-update final-state check. The two study-case locks additionally
//! ship the paper's exact bug scenarios ([`dpdk_scenario`],
//! [`huawei_scenario`]).

mod common;
mod dpdk;
mod extra;
mod huawei;
mod mcs;
mod qspinlock;
mod rwlock;
mod simple;

pub use common::{
    emit_counter_increment, mutex_client, node_addr, LockModel, COUNTER, LOCK, LOCK2, LOCK3,
    LOCKED_OFF, NEXT_OFF, NODE_BASE, NODE_SIZE, SCRATCH,
};
pub use dpdk::{dpdk_scenario, DpdkMcsLock};
pub use extra::{
    recursive_scenario, ArrayLock, FutexMutex, RecursiveLock, TwaLock, ARRAY_BASE, TWA_WA_BASE,
};
pub use huawei::{huawei_scenario, HuaweiMcsLock};
pub use mcs::{clh_dummy_node, CertikosMcs, ClhLock, McsLock};
pub use qspinlock::{
    qspinlock_handover_scenario, qspinlock_scenario, tail_of, Qspinlock, LOCKED_MASK, LOCKED_PENDING_MASK, LOCKED_VAL,
    PENDING_VAL, TAIL_SHIFT,
};
pub use rwlock::{rwlock_reader_scenario, RwLock, WRITER};
pub use simple::{CasLock, Semaphore, TasLock, TicketLock, TtasLock};

/// The catalog of verifiable lock models with their default (published)
/// barrier assignments — every [`crate::registry`] entry, built, in
/// catalog order.
pub fn all_lock_models() -> Vec<Box<dyn LockModel>> {
    crate::registry::catalog().iter().map(crate::registry::LockEntry::build).collect()
}
