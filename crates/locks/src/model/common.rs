//! Shared infrastructure for model-checked locks: the memory map, the
//! [`LockModel`] abstraction and the paper's generic client.
//!
//! The client is the workload AMC verifies (paper §1.2 "generic client
//! code" and Listing 1): every thread acquires the lock, increments a
//! shared counter with *plain* accesses, and releases. Mutual exclusion
//! and sufficient barriers are both checked by a single final-state
//! predicate — a lost increment means overlapping critical sections or
//! missing synchronization (exactly the Huawei MCS failure of §3.2).

use vsync_graph::Loc;
use vsync_lang::{Fixed, Program, ProgramBuilder, Reg, Test, ThreadBuilder};

/// The primary lock word (tail pointer for queue locks).
pub const LOCK: Loc = 0x100;
/// Secondary lock word (e.g. ticket `owner`).
pub const LOCK2: Loc = 0x108;
/// Tertiary lock word.
pub const LOCK3: Loc = 0x110;
/// The client's shared counter.
pub const COUNTER: Loc = 0x200;
/// Extra client scratch locations.
pub const SCRATCH: Loc = 0x300;

/// Base address of per-thread queue nodes.
pub const NODE_BASE: Loc = 0x1000;
/// Size of one queue node.
pub const NODE_SIZE: Loc = 0x40;
/// Offset of a node's `next` field.
pub const NEXT_OFF: Loc = 0x0;
/// Offset of a node's `locked`/`spin` field.
pub const LOCKED_OFF: Loc = 0x8;

/// The queue node address of a thread (for queue-based locks).
pub fn node_addr(tid: u32) -> Loc {
    NODE_BASE + tid as Loc * NODE_SIZE
}

/// Registers `r0..=r15` belong to lock code; the client uses `r24..=r27`.
pub const CLIENT_REG0: Reg = Reg(24);
/// Second client register.
pub const CLIENT_REG1: Reg = Reg(25);

/// A lock algorithm expressed in the modeling language.
///
/// Implementations emit straight-line acquire/release code into a thread
/// builder; barrier annotations become named, shared sites the optimizer
/// can relax.
pub trait LockModel: std::fmt::Debug + Sync {
    /// Identifier used in reports (`"ttas"`, `"mcs"`, ...).
    fn name(&self) -> &'static str;

    /// Declare initial memory values (most locks start all-zero).
    fn emit_init(&self, _pb: &mut ProgramBuilder) {}

    /// Emit once-per-thread setup before the first acquire (e.g. CLH node
    /// adoption).
    fn emit_thread_setup(&self, _t: &mut ThreadBuilder) {}

    /// Emit the acquire path.
    fn emit_acquire(&self, t: &mut ThreadBuilder);

    /// Emit the release path.
    fn emit_release(&self, t: &mut ThreadBuilder);
}

/// Build the generic mutual-exclusion client: `threads` threads each
/// acquire, increment [`COUNTER`] with plain (non-atomic) accesses, and
/// release, `acquires` times. The final-state check demands no increment
/// is lost.
pub fn mutex_client(lock: &dyn LockModel, threads: usize, acquires: usize) -> Program {
    let mut pb = ProgramBuilder::new(lock.name());
    pb.init(COUNTER, 0);
    lock.emit_init(&mut pb);
    for _ in 0..threads {
        pb.thread(|t| {
            lock.emit_thread_setup(t);
            for _ in 0..acquires {
                lock.emit_acquire(t);
                emit_counter_increment(t);
                lock.emit_release(t);
            }
        });
    }
    let total = (threads * acquires) as u64;
    pb.final_check(COUNTER, Test::eq(total), "no increment lost in the critical section");
    pb.build().expect("lock client is well-formed")
}

/// The critical section: `counter++` with plain relaxed accesses.
///
/// Uses `Fixed` sites so the optimizer never touches client code.
pub fn emit_counter_increment(t: &mut ThreadBuilder) {
    t.load(CLIENT_REG0, COUNTER, Fixed(vsync_graph::Mode::Rlx));
    t.add(CLIENT_REG1, CLIENT_REG0, 1u64);
    t.store(COUNTER, CLIENT_REG1, Fixed(vsync_graph::Mode::Rlx));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_addresses_do_not_overlap() {
        assert_eq!(node_addr(0), 0x1000);
        assert_eq!(node_addr(1), 0x1040);
        assert!(node_addr(0) + LOCKED_OFF < node_addr(1));
        // Nodes stay clear of the static locations.
        assert!(node_addr(0) > COUNTER + 8);
    }
}
