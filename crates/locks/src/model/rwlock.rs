//! A reader-writer spinlock: reader count in the low bits, a writer bit
//! above them.

use vsync_graph::Mode;
use vsync_lang::{Fixed, Program, ProgramBuilder, Reg, Test, ThreadBuilder};

use super::common::{LockModel, LOCK, SCRATCH};

/// Writer bit of the lock word.
pub const WRITER: u64 = 1 << 16;

/// The reader-writer lock. As a [`LockModel`] it acts as its writer lock;
/// reader-side code is emitted with [`RwLock::emit_read_acquire`] /
/// [`RwLock::emit_read_release`].
#[derive(Debug, Clone, Copy)]
pub struct RwLock {
    /// Mode of the writer-acquiring CAS.
    pub write_acquire_mode: Mode,
    /// Mode of the writer-releasing store.
    pub write_release_mode: Mode,
    /// Mode of the reader-acquiring CAS.
    pub read_acquire_mode: Mode,
    /// Mode of the reader-releasing fetch-sub.
    pub read_release_mode: Mode,
}

impl Default for RwLock {
    fn default() -> Self {
        RwLock {
            write_acquire_mode: Mode::Acq,
            write_release_mode: Mode::Rel,
            read_acquire_mode: Mode::Acq,
            read_release_mode: Mode::Rel,
        }
    }
}

impl RwLock {
    /// Reader acquire: wait until no writer, then bump the reader count.
    pub fn emit_read_acquire(&self, t: &mut ThreadBuilder) {
        let retry = t.here_label();
        let got = t.label();
        t.await_load(
            Reg(0),
            LOCK,
            Test::mask_eq(WRITER, 0u64),
            ("rw.racquire.await", Mode::Rlx),
        );
        t.op(Reg(1), vsync_lang::AluOp::Add, Reg(0), 1u64);
        t.cas(Reg(2), LOCK, Reg(0), Reg(1), ("rw.racquire.cas", self.read_acquire_mode));
        t.jmp_if(Reg(2), Test::eq(Reg(0)), got);
        t.jmp(retry);
        t.bind(got);
    }

    /// Reader release: drop the reader count.
    pub fn emit_read_release(&self, t: &mut ThreadBuilder) {
        t.fetch_sub(Reg(3), LOCK, 1u64, ("rw.rrelease.sub", self.read_release_mode));
    }
}

impl LockModel for RwLock {
    fn name(&self) -> &'static str {
        "rwlock"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        // Writers wait for a completely free word.
        t.await_cas(Reg(4), LOCK, 0u64, WRITER, ("rw.wacquire.cas", self.write_acquire_mode));
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        t.store(LOCK, 0u64, ("rw.wrelease.store", self.write_release_mode));
    }
}

/// A reader-consistency scenario: the writer updates two locations under
/// the write lock; a reader takes the read lock and must observe them
/// equal. Verifies reader/writer exclusion *and* the barrier placement.
pub fn rwlock_reader_scenario(lock: RwLock) -> Program {
    let (a, b) = (SCRATCH, SCRATCH + 8);
    let mut pb = ProgramBuilder::new("rwlock-reader");
    pb.thread(move |t| {
        lock.emit_acquire(t);
        t.store(a, 1u64, Fixed(Mode::Rlx));
        t.store(b, 1u64, Fixed(Mode::Rlx));
        lock.emit_release(t);
    });
    pb.thread(move |t| {
        lock.emit_read_acquire(t);
        t.load(Reg(8), a, Fixed(Mode::Rlx));
        t.load(Reg(9), b, Fixed(Mode::Rlx));
        lock.emit_read_release(t);
        // Under the read lock, a and b are updated atomically.
        t.assert(
            Reg(8),
            Test { mask: None, cmp: vsync_lang::Cmp::Eq, rhs: Reg(9).into() },
            "reader sees a == b",
        );
    });
    pb.build().expect("scenario is well-formed")
}

#[cfg(test)]
mod tests {
    use super::super::common::mutex_client;
    use super::*;
    use vsync_core::{verify, AmcConfig, Verdict};
    use vsync_model::ModelKind;

    fn vmm() -> AmcConfig {
        AmcConfig::with_model(ModelKind::Vmm)
    }

    #[test]
    fn writer_lock_mutual_exclusion() {
        let p = mutex_client(&RwLock::default(), 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn reader_sees_consistent_pair() {
        let v = verify(&rwlock_reader_scenario(RwLock::default()), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn relaxed_writer_release_breaks_readers() {
        let lock = RwLock { write_release_mode: Mode::Rlx, ..RwLock::default() };
        let v = verify(&rwlock_reader_scenario(lock), &vmm());
        assert!(matches!(v, Verdict::Safety(_)), "got {v}");
    }

    #[test]
    fn relaxed_reader_acquire_breaks_readers() {
        let lock = RwLock { read_acquire_mode: Mode::Rlx, ..RwLock::default() };
        let v = verify(&rwlock_reader_scenario(lock), &vmm());
        assert!(matches!(v, Verdict::Safety(_)), "got {v}");
    }
}
