//! Study case §3.1: the DPDK v20.05 MCS lock bug.
//!
//! `rte_mcslock_lock` publishes `prev->next = me` with a **relaxed** store
//! (Fig. 13, line 27). Nothing orders the initialization of `me->locked`
//! before that publication, so the releasing thread's
//! `me->next->locked = 0` can land `mo`-before the owner's own
//! `me->locked = 1` — and the owner awaits `locked == 0` forever
//! (Fig. 14). The fix makes the publication release and — under IMM-style
//! models, which have no address-dependency ordering — the consumer's read
//! acquire (Fig. 15).

use vsync_graph::Mode;
use vsync_lang::{Addr, Program, ProgramBuilder, Reg, Test, ThreadBuilder};

use super::common::{node_addr, LockModel, LOCK, LOCKED_OFF, NEXT_OFF};

/// The DPDK MCS lock, with the bug toggleable.
#[derive(Debug, Clone, Copy)]
pub struct DpdkMcsLock {
    /// `false` reproduces DPDK v20.05 (relaxed `prev->next` store and
    /// relaxed `me->next` reads); `true` applies the paper's fix.
    pub fixed: bool,
}

impl DpdkMcsLock {
    /// The buggy upstream version.
    pub fn buggy() -> Self {
        DpdkMcsLock { fixed: false }
    }

    /// The fixed version.
    pub fn patched() -> Self {
        DpdkMcsLock { fixed: true }
    }

    fn store_next_mode(&self) -> Mode {
        if self.fixed {
            Mode::Rel
        } else {
            Mode::Rlx
        }
    }

    fn read_next_mode(&self) -> Mode {
        if self.fixed {
            Mode::Acq
        } else {
            Mode::Rlx
        }
    }
}

impl LockModel for DpdkMcsLock {
    fn name(&self) -> &'static str {
        if self.fixed {
            "dpdk-mcs-fixed"
        } else {
            "dpdk-mcs"
        }
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        let me = node_addr(t.id());
        let done = t.label();
        // Init me node (Fig. 13 lines 14-15).
        t.store(me + LOCKED_OFF, 1u64, ("dpdk.acquire.init_locked", Mode::Rlx));
        t.store(me + NEXT_OFF, 0u64, ("dpdk.acquire.init_next", Mode::Rlx));
        // prev = exchange(msl, me, ACQ_REL) (line 23).
        t.xchg(Reg(0), LOCK, me, ("dpdk.acquire.xchg", Mode::AcqRel));
        t.jmp_if(Reg(0), Test::eq(0u64), done);
        // prev->next = me  (line 27 — RELAXED: the bug).
        t.store(
            Addr::RegOff(Reg(0), NEXT_OFF),
            me,
            ("dpdk.acquire.store_next", self.store_next_mode()),
        );
        // __atomic_thread_fence(ACQ_REL) (line 32 — useless, see §3.1).
        t.fence(("dpdk.acquire.fence", Mode::AcqRel));
        // while (load(&me->locked, ACQUIRE)) pause (line 33).
        t.await_eq(Reg(1), me + LOCKED_OFF, 0u64, ("dpdk.acquire.await", Mode::Acq));
        t.bind(done);
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        let me = node_addr(t.id());
        let pass = t.label();
        let done = t.label();
        // if (load(&me->next, RELAXED) == NULL) { slowpath } (line 39).
        t.load(Reg(2), me + NEXT_OFF, ("dpdk.release.load_next", self.read_next_mode()));
        t.jmp_if(Reg(2), Test::ne(0u64), pass);
        t.cas(Reg(3), LOCK, me, 0u64, ("dpdk.release.cas", Mode::AcqRel));
        t.jmp_if(Reg(3), Test::eq(me), done);
        t.await_neq(Reg(2), me + NEXT_OFF, 0u64, ("dpdk.release.await_next", self.read_next_mode()));
        t.bind(pass);
        // store(&me->next->locked, 0, RELEASE) (line 44).
        t.store(Addr::RegOff(Reg(2), LOCKED_OFF), 0u64, ("dpdk.release.handover", Mode::Rel));
        t.bind(done);
    }
}

/// The exact bug scenario of Fig. 13 (lines 46-55): Bob holds the lock and
/// releases it; Alice acquires. In the buggy version Alice can hang
/// forever — an await-termination violation with Fig. 14's graph as the
/// counterexample.
pub fn dpdk_scenario(fixed: bool) -> Program {
    let lock = DpdkMcsLock { fixed };
    let alice = node_addr(0);
    let bob = node_addr(1);
    let mut pb = ProgramBuilder::new(if fixed { "dpdk-scenario-fixed" } else { "dpdk-scenario" });
    // Bob has the lock: tail points at his node.
    pb.init(LOCK, bob);
    pb.init(bob + NEXT_OFF, 0);
    pb.init(alice + NEXT_OFF, 0);
    pb.init(alice + LOCKED_OFF, 0);
    // Alice: rte_mcslock_lock(&tail, &alice).
    pb.thread(|t| {
        lock.emit_acquire(t);
    });
    // Bob: rte_mcslock_unlock(&tail, &bob) — fastpath ignored per Fig. 13:
    // he waits for his successor and hands over.
    pb.thread(|t| {
        let read_mode = if fixed { Mode::Acq } else { Mode::Rlx };
        t.await_neq(Reg(2), bob + NEXT_OFF, 0u64, ("bob.await_next", read_mode));
        t.store(Addr::RegOff(Reg(2), LOCKED_OFF), 0u64, ("bob.handover", Mode::Rel));
    });
    pb.build().expect("scenario is well-formed")
}

#[cfg(test)]
mod tests {
    use super::super::common::mutex_client;
    use super::*;
    use vsync_core::{verify, AmcConfig, Verdict};
    use vsync_model::ModelKind;

    fn vmm() -> AmcConfig {
        AmcConfig::with_model(ModelKind::Vmm)
    }

    #[test]
    fn buggy_scenario_hangs_alice() {
        let v = verify(&dpdk_scenario(false), &vmm());
        let Verdict::AwaitTermination(ce) = &v else {
            panic!("expected Alice to hang (Fig. 14), got {v}");
        };
        // The witness has Alice's poll of her own locked flag pending.
        assert!(ce.graph.pending_reads().any(|(_, loc)| loc == node_addr(0) + LOCKED_OFF));
    }

    #[test]
    fn fixed_scenario_verifies() {
        let v = verify(&dpdk_scenario(true), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn buggy_scenario_fine_under_sc() {
        // The hang is a weak-memory artifact: SC admits no such execution.
        let v = verify(&dpdk_scenario(false), &AmcConfig::with_model(ModelKind::Sc));
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn buggy_scenario_fine_under_tso() {
        // x86 is also safe — the bug bites on weaker (ARM-like) models.
        let v = verify(&dpdk_scenario(false), &AmcConfig::with_model(ModelKind::Tso));
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn fixed_lock_full_client_verifies() {
        let p = mutex_client(&DpdkMcsLock::patched(), 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn buggy_lock_full_client_violates() {
        let p = mutex_client(&DpdkMcsLock::buggy(), 2, 1);
        let v = verify(&p, &vmm());
        assert!(
            matches!(v, Verdict::AwaitTermination(_) | Verdict::Safety(_)),
            "expected a violation, got {v}"
        );
    }
}
