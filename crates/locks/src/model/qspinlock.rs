//! The Linux qspinlock (§3.3, Table 1, Figs. 20–22), modeled after version
//! 4.4 — the paper's optimization baseline.
//!
//! Word layout (32-bit in Linux; low bits of a cell here):
//!
//! ```text
//! bits 0..8   locked byte   (_Q_LOCKED_VAL    = 0x0001)
//! bits 8..16  pending bit   (_Q_PENDING_VAL   = 0x0100)
//! bits 16..   tail cpu+1    (tail of tid t    = (t+1) << 16)
//! ```
//!
//! The first contender spins on the pending bit instead of queueing; later
//! contenders join an MCS queue embedded in per-CPU nodes. Linux's
//! `cmpxchg` has a full barrier *after* the operation on success (Fig. 22);
//! the 4.4 baseline is modeled the same way: a `rel` cmpxchg followed by a
//! conditional SC fence — exactly the sites VSYNC relaxes in Fig. 20.

use vsync_graph::Mode;
use vsync_lang::{Addr, AluOp, Program, ProgramBuilder, Reg, Test, ThreadBuilder};

use super::common::{node_addr, LockModel, COUNTER, LOCK, LOCKED_OFF, NEXT_OFF, NODE_BASE, NODE_SIZE};

/// `_Q_LOCKED_VAL`.
pub const LOCKED_VAL: u64 = 0x0001;
/// `_Q_PENDING_VAL`.
pub const PENDING_VAL: u64 = 0x0100;
/// Mask of the locked byte.
pub const LOCKED_MASK: u64 = 0x00ff;
/// Mask of locked byte + pending bit.
pub const LOCKED_PENDING_MASK: u64 = 0xffff;
/// Tail shift.
pub const TAIL_SHIFT: u64 = 16;

/// Tail encoding of a thread (cpu + 1, shifted).
pub fn tail_of(tid: u32) -> u64 {
    ((tid as u64) + 1) << TAIL_SHIFT
}

/// The qspinlock model. Default barrier modes reproduce the Linux 4.4
/// baseline of Table 1 (3 acq / 6 rel / 6 sc among cmpxchg+fence pairs);
/// the optimizer derives the VSYNC column.
#[derive(Debug, Clone, Copy, Default)]
pub struct Qspinlock;

impl Qspinlock {
    /// Emit `old = linux_cmpxchg(LOCK, expected_reg_or_imm, new)` with the
    /// Fig. 22 wrapper: cmpxchg(rel) + SC fence when it succeeded.
    fn linux_cmpxchg(
        t: &mut ThreadBuilder,
        dst: Reg,
        expected: impl Into<vsync_lang::Operand> + Copy,
        new: impl Into<vsync_lang::Operand>,
        site: &str,
    ) {
        let skip = t.label();
        t.cas(dst, LOCK, expected, new, (&*format!("{site}.cmpxchg"), Mode::Rel));
        t.jmp_if(dst, Test::ne(expected), skip);
        t.fence((&*format!("{site}.fence"), Mode::Sc));
        t.bind(skip);
    }
}

impl Qspinlock {
    /// Head-of-queue protocol: wait for owner and pending waiter to drain,
    /// then either claim an empty queue or hand the head role to the
    /// successor. Factored out so scenarios can start a thread mid-queue
    /// (see [`qspinlock_handover_scenario`]).
    fn emit_queue_head(
        &self,
        t: &mut ThreadBuilder,
        my_tail: u64,
        me: u64,
        contended: vsync_lang::Label,
        done: vsync_lang::Label,
    ) {
        // Head of queue: wait for owner + pending to drain.
        t.await_load(
            Reg(7),
            LOCK,
            Test::mask_eq(LOCKED_PENDING_MASK, 0u64),
            ("q.queue.await_lp", Mode::Acq),
        );
        // If we are the last queued CPU, claim the lock and empty the queue.
        t.jmp_if(Reg(7), Test::ne(my_tail), contended);
        Qspinlock::linux_cmpxchg(t, Reg(8), my_tail, LOCKED_VAL, "q.queue.claim");
        t.jmp_if(Reg(8), Test::eq(my_tail), done);
        t.bind(contended);
        // Somebody is queued behind us: set the locked byte...
        t.fetch_or(Reg(9), LOCK, LOCKED_VAL, ("q.queue.set_locked", Mode::Rlx));
        // ...and hand the MCS head role to our successor.
        t.await_neq(Reg(10), me + NEXT_OFF, 0u64, ("q.queue.await_next", Mode::Acq));
        t.store(Addr::RegOff(Reg(10), LOCKED_OFF), 0u64, ("q.queue.handover", Mode::Rel));
    }
}

impl LockModel for Qspinlock {
    fn name(&self) -> &'static str {
        "qspinlock"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        let tid = t.id();
        let me = node_addr(tid);
        let my_tail = tail_of(tid);
        let done = t.label();
        let slow = t.label();
        let queue = t.label();
        let head = t.label();
        let contended = t.label();

        // Fastpath: cmpxchg(0 -> LOCKED).
        Qspinlock::linux_cmpxchg(t, Reg(0), 0u64, LOCKED_VAL, "q.lock");
        t.jmp_if(Reg(0), Test::ne(0u64), slow);
        t.jmp(done);

        // --- queued_spin_lock_slowpath ---
        t.bind(slow);
        // Wait while the word is pending-only (owner gone, pending set):
        // atomic32_await_neq_rlx in Fig. 20.
        t.await_neq(Reg(1), LOCK, PENDING_VAL, ("q.slow.await_pending", Mode::Rlx));
        // Any tail or pending => queue.
        t.op(Reg(2), AluOp::And, Reg(1), !LOCKED_MASK);
        t.jmp_if(Reg(2), Test::ne(0u64), queue);
        // Try to take the pending bit: cmpxchg(val -> val | PENDING).
        t.op(Reg(3), AluOp::Or, Reg(1), PENDING_VAL);
        Qspinlock::linux_cmpxchg(t, Reg(4), Reg(1), Reg(3), "q.slow.pend");
        t.jmp_if(Reg(4), Test::ne(Reg(1)), slow); // raced: retry
        // We own pending: wait for the owner to drop the locked byte.
        t.await_load(
            Reg(5),
            LOCK,
            Test::mask_eq(LOCKED_MASK, 0u64),
            ("q.slow.await_locked", Mode::Acq),
        );
        // Take the lock: clear pending, set locked (add LOCKED - PENDING).
        t.rmw(
            Reg(6),
            LOCK,
            vsync_lang::RmwOp::Sub,
            PENDING_VAL - LOCKED_VAL,
            ("q.slow.set_locked", Mode::Rlx),
        );
        t.jmp(done);

        // --- queue path ---
        t.bind(queue);
        t.store(me + NEXT_OFF, 0u64, ("q.queue.init_next", Mode::Rlx));
        t.store(me + LOCKED_OFF, 1u64, ("q.queue.init_locked", Mode::Rlx));
        // xchg_tail: cmpxchg loop publishing our tail.
        let xt = t.here_label();
        t.load(Reg(1), LOCK, ("q.queue.read_tail", Mode::Rlx));
        t.op(Reg(2), AluOp::And, Reg(1), LOCKED_PENDING_MASK);
        t.op(Reg(2), AluOp::Or, Reg(2), my_tail);
        // Fig. 20: this is the cmpxchg VSYNC keeps at seq_cst.
        Qspinlock::linux_cmpxchg(t, Reg(3), Reg(1), Reg(2), "q.queue.xchg_tail");
        t.jmp_if(Reg(3), Test::ne(Reg(1)), xt);
        // prev tail (cpu+1) from the old value.
        t.op(Reg(4), AluOp::Shr, Reg(1), TAIL_SHIFT);
        t.jmp_if(Reg(4), Test::eq(0u64), head);
        // Link behind the predecessor: prev_node = BASE + (ptail-1)*SIZE.
        t.op(Reg(5), AluOp::Sub, Reg(4), 1u64);
        t.op(Reg(5), AluOp::Shl, Reg(5), NODE_SIZE.trailing_zeros() as u64);
        t.op(Reg(5), AluOp::Add, Reg(5), NODE_BASE);
        // Must be release: the successor's node initialization has to be
        // visible before the link is (the Linux 4.16 fix, and §3.1's DPDK
        // lesson). Under IMM the consumer's address dependency would allow
        // a relaxed read; our RC11-style VMM needs the acquire side too.
        t.store(Addr::RegOff(Reg(5), NEXT_OFF), me, ("q.queue.store_next", Mode::Rel));
        // Spin on our own node until the predecessor hands over.
        t.await_eq(Reg(6), me + LOCKED_OFF, 0u64, ("q.queue.await_node", Mode::Acq));

        t.bind(head);
        self.emit_queue_head(t, my_tail, me, contended, done);
        t.bind(done);
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        // Linux 4.4: smp_mb(); atomic_sub(_Q_LOCKED_VAL) — Fig. 20 removes
        // the fence and makes the sub release.
        t.fence(("q.unlock.fence", Mode::Sc));
        t.fetch_sub(Reg(11), LOCK, LOCKED_VAL, ("q.unlock.sub", Mode::Rlx));
    }
}

/// A cheaper Table 1 scenario: thread 0 starts as the lock owner (the word
/// is initialized to `LOCKED_VAL`) and only releases; the other
/// `threads - 1` threads acquire, increment, release. With three threads
/// this exercises the pending *and* the queue paths without paying for
/// three full acquisitions.
pub fn qspinlock_scenario(threads: usize) -> Program {
    let lock = Qspinlock;
    let mut pb = ProgramBuilder::new("qspinlock-scenario");
    pb.init(LOCK, LOCKED_VAL);
    pb.init(COUNTER, 0);
    pb.thread(|t| {
        super::common::emit_counter_increment(t);
        lock.emit_release(t);
    });
    for _ in 1..threads {
        pb.thread(|t| {
            lock.emit_acquire(t);
            super::common::emit_counter_increment(t);
            lock.emit_release(t);
        });
    }
    pb.final_check(
        COUNTER,
        Test::eq(threads as u64),
        "no increment lost in the critical section",
    );
    pb.build().expect("scenario is well-formed")
}

/// The queue-handover scenario: thread 1 starts *pre-queued* (the lock
/// word already carries its tail and the owner, thread 0, is about to
/// release), and thread 2 enqueues behind it. With only three threads this
/// exercises every queue-path site — `store_next`, `await_node`,
/// `set_locked`, `await_next` and `handover` — which the plain 3-thread
/// scenario cannot (its queue never holds two waiters at once).
///
/// Without this scenario in the oracle, the optimizer happily relaxes the
/// MCS hand-off of the queue to `rlx` — and the resulting lock loses
/// increments at 4 threads. The §3.1 lesson, rediscovered push-button.
pub fn qspinlock_handover_scenario() -> Program {
    let lock = Qspinlock;
    let t1 = 1u32;
    let t1_node = node_addr(t1);
    let mut pb = ProgramBuilder::new("qspinlock-handover");
    // T0 owns the lock; T1 is already queued (tail published, spinning as
    // queue head — nobody precedes it, so it starts at the head protocol).
    pb.init(LOCK, LOCKED_VAL | tail_of(t1));
    pb.init(t1_node + NEXT_OFF, 0);
    pb.init(t1_node + LOCKED_OFF, 1);
    pb.init(COUNTER, 0);
    // T0: critical section, then release.
    pb.thread(|t| {
        super::common::emit_counter_increment(t);
        lock.emit_release(t);
    });
    // T1: resume as the waiting queue head.
    pb.thread(move |t| {
        let contended = t.label();
        let done = t.label();
        lock.emit_queue_head(t, tail_of(t1), t1_node, contended, done);
        t.bind(done);
        super::common::emit_counter_increment(t);
        lock.emit_release(t);
    });
    // T2: full acquisition — enqueues behind T1, exercising the link and
    // hand-off writes.
    pb.thread(|t| {
        lock.emit_acquire(t);
        super::common::emit_counter_increment(t);
        lock.emit_release(t);
    });
    pb.final_check(COUNTER, Test::eq(3u64), "no increment lost in the critical section");
    pb.build().expect("scenario is well-formed")
}

#[cfg(test)]
mod tests {
    use super::super::common::mutex_client;
    use super::*;
    use vsync_core::{verify, AmcConfig};
    use vsync_model::ModelKind;

    fn vmm() -> AmcConfig {
        AmcConfig::with_model(ModelKind::Vmm)
    }

    #[test]
    fn tail_encoding() {
        assert_eq!(tail_of(0), 0x10000);
        assert_eq!(tail_of(2), 0x30000);
    }

    #[test]
    fn two_thread_client_verifies() {
        // Exercises fastpath + pending path.
        let p = mutex_client(&Qspinlock, 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn two_thread_scenario_verifies() {
        let p = qspinlock_scenario(2);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn handover_scenario_verifies_with_published_barriers() {
        let p = qspinlock_handover_scenario();
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn handover_scenario_catches_relaxed_handover() {
        use vsync_lang::ModeRef;
        let mut p = qspinlock_handover_scenario();
        let i = p.sites().iter().position(|s| s.name == "q.queue.handover").unwrap();
        p.set_mode(ModeRef(i as u32), vsync_graph::Mode::Rlx);
        let j = p.sites().iter().position(|s| s.name == "q.queue.await_node").unwrap();
        p.set_mode(ModeRef(j as u32), vsync_graph::Mode::Rlx);
        let v = verify(&p, &vmm());
        assert!(!v.is_verified(), "relaxed hand-off must be caught: {v}");
    }
}
