//! Queue locks: MCS (Mellor-Crummey & Scott), CLH, and the CertiKOS-style
//! sc-heavy MCS used as a baseline in the paper's Fig. 27.

use vsync_graph::Mode;
use vsync_lang::{Addr, ProgramBuilder, Reg, Test, ThreadBuilder};

use super::common::{node_addr, LockModel, LOCK, LOCKED_OFF, NEXT_OFF};

/// The MCS queue lock with correct (already relaxed) barriers.
///
/// Node protocol: `next = 0` until a successor announces itself;
/// `locked = 1` while waiting, reset to `0` by the predecessor.
#[derive(Debug, Clone, Copy)]
pub struct McsLock {
    /// Mode of the tail exchange.
    pub xchg_mode: Mode,
    /// Mode of the `prev->next = me` store (must be release: §3.1!).
    pub store_next_mode: Mode,
    /// Mode of the `me->locked` polling read.
    pub await_mode: Mode,
    /// Mode of the `me->next` read in release (must be acquire under IMM).
    pub load_next_mode: Mode,
    /// Mode of the tail CAS in release.
    pub release_cas_mode: Mode,
    /// Mode of the `next->locked = 0` handover store.
    pub handover_mode: Mode,
}

impl Default for McsLock {
    fn default() -> Self {
        McsLock {
            xchg_mode: Mode::AcqRel,
            store_next_mode: Mode::Rel,
            await_mode: Mode::Acq,
            load_next_mode: Mode::Acq,
            release_cas_mode: Mode::Rel,
            handover_mode: Mode::Rel,
        }
    }
}

impl McsLock {
    fn emit_acquire_named(&self, t: &mut ThreadBuilder, prefix: &str) {
        let me = node_addr(t.id());
        let done = t.label();
        t.store(me + NEXT_OFF, 0u64, (&*format!("{prefix}.acquire.init_next"), Mode::Rlx));
        t.store(me + LOCKED_OFF, 1u64, (&*format!("{prefix}.acquire.init_locked"), Mode::Rlx));
        t.xchg(Reg(0), LOCK, me, (&*format!("{prefix}.acquire.xchg"), self.xchg_mode));
        t.jmp_if(Reg(0), Test::eq(0u64), done);
        t.store(
            Addr::RegOff(Reg(0), NEXT_OFF),
            me,
            (&*format!("{prefix}.acquire.store_next"), self.store_next_mode),
        );
        t.await_eq(
            Reg(1),
            me + LOCKED_OFF,
            0u64,
            (&*format!("{prefix}.acquire.await"), self.await_mode),
        );
        t.bind(done);
    }

    fn emit_release_named(&self, t: &mut ThreadBuilder, prefix: &str) {
        let me = node_addr(t.id());
        let pass = t.label();
        let done = t.label();
        t.load(Reg(2), me + NEXT_OFF, (&*format!("{prefix}.release.load_next"), self.load_next_mode));
        t.jmp_if(Reg(2), Test::ne(0u64), pass);
        t.cas(Reg(3), LOCK, me, 0u64, (&*format!("{prefix}.release.cas"), self.release_cas_mode));
        t.jmp_if(Reg(3), Test::eq(me), done);
        t.await_neq(
            Reg(2),
            me + NEXT_OFF,
            0u64,
            (&*format!("{prefix}.release.await_next"), self.load_next_mode),
        );
        t.bind(pass);
        t.store(
            Addr::RegOff(Reg(2), LOCKED_OFF),
            0u64,
            (&*format!("{prefix}.release.handover"), self.handover_mode),
        );
        t.bind(done);
    }
}

impl LockModel for McsLock {
    fn name(&self) -> &'static str {
        "mcs"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        self.emit_acquire_named(t, "mcs");
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        self.emit_release_named(t, "mcs");
    }
}

/// The CertiKOS-style MCS lock: same shape, every barrier SC (the verified
/// OS keeps everything sequentially consistent). Baseline of Fig. 27.
#[derive(Debug, Clone, Copy, Default)]
pub struct CertikosMcs;

impl LockModel for CertikosMcs {
    fn name(&self) -> &'static str {
        "certikos-mcs"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        let sc = McsLock {
            xchg_mode: Mode::Sc,
            store_next_mode: Mode::Sc,
            await_mode: Mode::Sc,
            load_next_mode: Mode::Sc,
            release_cas_mode: Mode::Sc,
            handover_mode: Mode::Sc,
        };
        sc.emit_acquire_named(t, "certikos");
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        let sc = McsLock {
            xchg_mode: Mode::Sc,
            store_next_mode: Mode::Sc,
            await_mode: Mode::Sc,
            load_next_mode: Mode::Sc,
            release_cas_mode: Mode::Sc,
            handover_mode: Mode::Sc,
        };
        sc.emit_release_named(t, "certikos");
    }
}

/// The CLH queue lock: threads spin on their *predecessor's* node.
///
/// The queue tail starts at a dummy unlocked node. Released nodes are
/// recycled: after releasing, a thread adopts its predecessor's node
/// (register `r15` holds the current node across acquire/release pairs).
#[derive(Debug, Clone, Copy)]
pub struct ClhLock {
    /// Mode of the tail exchange.
    pub xchg_mode: Mode,
    /// Mode of the predecessor poll.
    pub await_mode: Mode,
    /// Mode of the releasing store.
    pub release_mode: Mode,
}

impl Default for ClhLock {
    fn default() -> Self {
        ClhLock { xchg_mode: Mode::AcqRel, await_mode: Mode::Acq, release_mode: Mode::Rel }
    }
}

/// Address of the CLH dummy node (distinct from all per-thread nodes,
/// which use small thread ids).
pub fn clh_dummy_node() -> u64 {
    node_addr(48)
}

const MY_NODE: Reg = Reg(15);
const MY_PRED: Reg = Reg(14);

impl LockModel for ClhLock {
    fn name(&self) -> &'static str {
        "clh"
    }

    fn emit_init(&self, pb: &mut ProgramBuilder) {
        pb.init(LOCK, clh_dummy_node());
    }

    fn emit_thread_setup(&self, t: &mut ThreadBuilder) {
        t.mov(MY_NODE, node_addr(t.id()));
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        t.store(Addr::RegOff(MY_NODE, LOCKED_OFF), 1u64, ("clh.acquire.init", Mode::Rlx));
        t.xchg(MY_PRED, LOCK, MY_NODE, ("clh.acquire.xchg", self.xchg_mode));
        t.await_eq(
            Reg(0),
            Addr::RegOff(MY_PRED, LOCKED_OFF),
            0u64,
            ("clh.acquire.await", self.await_mode),
        );
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        t.store(Addr::RegOff(MY_NODE, LOCKED_OFF), 0u64, ("clh.release.store", self.release_mode));
        // Recycle: adopt the predecessor's node for the next round.
        t.mov(MY_NODE, MY_PRED);
    }
}

#[cfg(test)]
mod tests {
    use super::super::common::mutex_client;
    use super::*;
    use vsync_core::{verify, AmcConfig, Verdict};
    use vsync_model::ModelKind;

    fn vmm() -> AmcConfig {
        AmcConfig::with_model(ModelKind::Vmm)
    }

    #[test]
    fn mcs_two_threads_verifies() {
        let p = mutex_client(&McsLock::default(), 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn mcs_relaxed_store_next_hangs() {
        // The DPDK bug shape (§3.1): prev->next published without release.
        let lock = McsLock { store_next_mode: Mode::Rlx, load_next_mode: Mode::Rlx, ..McsLock::default() };
        let p = mutex_client(&lock, 2, 1);
        let v = verify(&p, &vmm());
        assert!(
            matches!(v, Verdict::AwaitTermination(_) | Verdict::Safety(_)),
            "expected a violation, got {v}"
        );
    }

    #[test]
    fn mcs_relaxed_handover_fails() {
        let lock = McsLock { handover_mode: Mode::Rlx, ..McsLock::default() };
        let p = mutex_client(&lock, 2, 1);
        assert!(matches!(verify(&p, &vmm()), Verdict::Safety(_)));
    }

    #[test]
    fn certikos_two_threads_verifies() {
        let p = mutex_client(&CertikosMcs, 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn clh_two_threads_verifies() {
        let p = mutex_client(&ClhLock::default(), 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn clh_reacquire_verifies() {
        // Node recycling: each thread acquires twice.
        let p = mutex_client(&ClhLock::default(), 2, 2);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn clh_relaxed_release_fails() {
        let lock = ClhLock { release_mode: Mode::Rlx, ..ClhLock::default() };
        let p = mutex_client(&lock, 2, 1);
        assert!(matches!(verify(&p, &vmm()), Verdict::Safety(_)));
    }
}
