//! Further verifiable locks from the paper's Table 5 list: Anderson's
//! array lock, the TWA lock (ticket + waiting array), a recursive CAS
//! lock, and Drepper's 3-state futex mutex.
//!
//! Futexes are modeled with await instructions: `futex_wait(addr, v)` is
//! "poll until the word differs from `v`" (the kernel wakeup is exactly a
//! value change making the poll succeed), and `futex_wake` needs no event
//! at all. This keeps the 3-state mutex fully checkable by AMC.

use vsync_graph::Mode;
use vsync_lang::{Addr, AluOp, Program, ProgramBuilder, Reg, Test, ThreadBuilder};

use super::common::{emit_counter_increment, LockModel, COUNTER, LOCK, LOCK2};

/// Base address of the Anderson-lock slots (4 slots, 16 bytes apart).
pub const ARRAY_BASE: u64 = 0x800;
/// Base address of the TWA waiting array.
pub const TWA_WA_BASE: u64 = 0x900;
/// Slot-count mask (4 slots; enough for the model-checked thread counts).
const SLOT_MASK: u64 = 3;

/// Anderson's array-based queue lock: each waiter spins on its own slot;
/// the releaser opens the next one.
#[derive(Debug, Clone, Copy)]
pub struct ArrayLock {
    /// Mode of the ticket-drawing fetch-add.
    pub fai_mode: Mode,
    /// Mode of the slot-polling read.
    pub await_mode: Mode,
    /// Mode of the slot-opening store in release.
    pub release_mode: Mode,
}

impl Default for ArrayLock {
    fn default() -> Self {
        ArrayLock { fai_mode: Mode::Rlx, await_mode: Mode::Acq, release_mode: Mode::Rel }
    }
}

const MY_TICKET: Reg = Reg(12);

impl ArrayLock {
    fn slot_addr(t: &mut ThreadBuilder, dst: Reg, ticket: Reg) {
        t.op(dst, AluOp::And, ticket, SLOT_MASK);
        t.op(dst, AluOp::Shl, dst, 4u64);
        t.op(dst, AluOp::Add, dst, ARRAY_BASE);
    }
}

impl LockModel for ArrayLock {
    fn name(&self) -> &'static str {
        "arraylock"
    }

    fn emit_init(&self, pb: &mut ProgramBuilder) {
        pb.init(ARRAY_BASE, 1); // slot 0 starts open
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        t.fetch_add(MY_TICKET, LOCK, 1u64, ("array.acquire.fai", self.fai_mode));
        ArrayLock::slot_addr(t, Reg(0), MY_TICKET);
        t.await_eq(Reg(1), Addr::Reg(Reg(0)), 1u64, ("array.acquire.await", self.await_mode));
        // Reset our slot for wrap-around reuse.
        t.store(Addr::Reg(Reg(0)), 0u64, ("array.acquire.clear", Mode::Rlx));
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        t.add(Reg(2), MY_TICKET, 1u64);
        ArrayLock::slot_addr(t, Reg(3), Reg(2));
        t.store(Addr::Reg(Reg(3)), 1u64, ("array.release.open", self.release_mode));
    }
}

/// TWA: a ticket lock whose far-from-the-head waiters park on a hashed
/// waiting-array slot before joining the owner spin (Dice & Kogan).
#[derive(Debug, Clone, Copy)]
pub struct TwaLock {
    /// Mode of the ticket fetch-add.
    pub fai_mode: Mode,
    /// Mode of the owner polls.
    pub await_mode: Mode,
    /// Mode of the owner-bump store.
    pub release_mode: Mode,
}

impl Default for TwaLock {
    fn default() -> Self {
        TwaLock { fai_mode: Mode::Rlx, await_mode: Mode::Acq, release_mode: Mode::Rel }
    }
}

impl TwaLock {
    fn wa_addr(t: &mut ThreadBuilder, dst: Reg, ticket: Reg) {
        t.op(dst, AluOp::And, ticket, SLOT_MASK);
        t.op(dst, AluOp::Shl, dst, 4u64);
        t.op(dst, AluOp::Add, dst, TWA_WA_BASE);
    }
}

impl LockModel for TwaLock {
    fn name(&self) -> &'static str {
        "twalock"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        let direct = t.label();
        // my = fetch_add(next); LOCK = next dispenser, LOCK2 = owner.
        t.fetch_add(MY_TICKET, LOCK, 1u64, ("twa.acquire.fai", self.fai_mode));
        t.load(Reg(0), LOCK2, ("twa.acquire.read_owner", self.await_mode));
        t.op(Reg(1), AluOp::Sub, MY_TICKET, Reg(0));
        t.jmp_if(Reg(1), Test::cmp(vsync_lang::Cmp::Le, 1u64), direct);
        // Long-term waiting: park on the hashed waiting-array slot until
        // the releaser posts our ticket.
        TwaLock::wa_addr(t, Reg(2), MY_TICKET);
        t.await_eq(Reg(3), Addr::Reg(Reg(2)), MY_TICKET, ("twa.acquire.await_wa", Mode::Rlx));
        t.bind(direct);
        t.await_eq(Reg(4), LOCK2, MY_TICKET, ("twa.acquire.await_owner", self.await_mode));
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        t.load(Reg(5), LOCK2, ("twa.release.read", Mode::Rlx));
        t.add(Reg(6), Reg(5), 1u64);
        t.store(LOCK2, Reg(6), ("twa.release.store", self.release_mode));
        // Post the wakeup for the ticket after the new owner.
        t.add(Reg(7), Reg(6), 1u64);
        TwaLock::wa_addr(t, Reg(8), Reg(7));
        t.store(Addr::Reg(Reg(8)), Reg(7), ("twa.release.post", self.release_mode));
    }
}

/// A recursive CAS lock: an owner word (thread id + 1) plus a depth
/// counter; re-entry by the owner only bumps the depth.
#[derive(Debug, Clone, Copy)]
pub struct RecursiveLock {
    /// Mode of the acquiring CAS.
    pub acquire_mode: Mode,
    /// Mode of the releasing store.
    pub release_mode: Mode,
}

impl Default for RecursiveLock {
    fn default() -> Self {
        RecursiveLock { acquire_mode: Mode::Acq, release_mode: Mode::Rel }
    }
}

impl LockModel for RecursiveLock {
    fn name(&self) -> &'static str {
        "recursive"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        let me = t.id() as u64 + 1;
        let have_it = t.label();
        // Owner check: only the owner can observe its own id here.
        t.load(Reg(0), LOCK, ("rec.acquire.read_owner", Mode::Rlx));
        t.jmp_if(Reg(0), Test::eq(me), have_it);
        t.await_cas(Reg(1), LOCK, 0u64, me, ("rec.acquire.cas", self.acquire_mode));
        t.bind(have_it);
        // depth++ (LOCK2 is only ever touched by the owner).
        t.load(Reg(2), LOCK2, ("rec.acquire.read_depth", Mode::Rlx));
        t.add(Reg(3), Reg(2), 1u64);
        t.store(LOCK2, Reg(3), ("rec.acquire.write_depth", Mode::Rlx));
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        let done = t.label();
        let full = t.label();
        t.load(Reg(4), LOCK2, ("rec.release.read_depth", Mode::Rlx));
        t.op(Reg(5), AluOp::Sub, Reg(4), 1u64);
        t.store(LOCK2, Reg(5), ("rec.release.write_depth", Mode::Rlx));
        t.jmp_if(Reg(5), Test::eq(0u64), full);
        t.jmp(done);
        t.bind(full);
        t.store(LOCK, 0u64, ("rec.release.store_owner", self.release_mode));
        t.bind(done);
    }
}

/// Drepper's 3-state futex mutex: 0 free, 1 locked, 2 locked-with-waiters.
/// `futex_wait(l, 2)` is modeled as `await_neq(l, 2)`.
#[derive(Debug, Clone, Copy)]
pub struct FutexMutex {
    /// Mode of the fast-path CAS and the slow-path exchanges.
    pub acquire_mode: Mode,
    /// Mode of the releasing exchange.
    pub release_mode: Mode,
}

impl Default for FutexMutex {
    fn default() -> Self {
        FutexMutex { acquire_mode: Mode::Acq, release_mode: Mode::Rel }
    }
}

impl LockModel for FutexMutex {
    fn name(&self) -> &'static str {
        "futex-mutex"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        let done = t.label();
        t.cas(Reg(0), LOCK, 0u64, 1u64, ("futex.acquire.cas", self.acquire_mode));
        t.jmp_if(Reg(0), Test::eq(0u64), done);
        // Contended: publish waiters (state 2) and sleep until it changes.
        let retry = t.here_label();
        t.xchg(Reg(1), LOCK, 2u64, ("futex.acquire.xchg", self.acquire_mode));
        t.jmp_if(Reg(1), Test::eq(0u64), done);
        t.await_neq(Reg(2), LOCK, 2u64, ("futex.acquire.wait", Mode::Rlx));
        t.jmp(retry);
        t.bind(done);
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        // xchg(0); a woken waiter polls the word, so the wake is implicit.
        t.xchg(Reg(3), LOCK, 0u64, ("futex.release.xchg", self.release_mode));
    }
}

/// A nested-acquisition scenario for the recursive lock: thread 0 takes the
/// lock twice (recursively) around its increment while thread 1 contends.
pub fn recursive_scenario(lock: RecursiveLock) -> Program {
    let mut pb = ProgramBuilder::new("recursive-nested");
    pb.init(COUNTER, 0);
    pb.thread(move |t| {
        lock.emit_acquire(t);
        lock.emit_acquire(t); // re-entry
        emit_counter_increment(t);
        lock.emit_release(t); // depth 2 -> 1: still owned
        emit_counter_increment(t);
        lock.emit_release(t); // depth 1 -> 0: released
    });
    pb.thread(move |t| {
        lock.emit_acquire(t);
        emit_counter_increment(t);
        lock.emit_release(t);
    });
    pb.final_check(COUNTER, Test::eq(3u64), "nested critical sections stay exclusive");
    pb.build().expect("scenario is well-formed")
}

#[cfg(test)]
mod tests {
    use super::super::common::mutex_client;
    use super::*;
    use vsync_core::{verify, AmcConfig, Verdict};
    use vsync_model::ModelKind;

    fn vmm() -> AmcConfig {
        AmcConfig::with_model(ModelKind::Vmm)
    }

    #[test]
    fn array_lock_verifies() {
        let v = verify(&mutex_client(&ArrayLock::default(), 2, 1), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn array_lock_relaxed_open_fails() {
        let lock = ArrayLock { release_mode: Mode::Rlx, ..ArrayLock::default() };
        let v = verify(&mutex_client(&lock, 2, 1), &vmm());
        assert!(matches!(v, Verdict::Safety(_)), "{v}");
    }

    #[test]
    fn array_lock_two_rounds_wraps_slots() {
        let v = verify(&mutex_client(&ArrayLock::default(), 2, 2), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn twa_lock_verifies() {
        let v = verify(&mutex_client(&TwaLock::default(), 2, 1), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn twa_long_term_path_verifies_three_threads() {
        // Three tickets: the last waiter takes the waiting-array path.
        let v = verify(&mutex_client(&TwaLock::default(), 3, 1), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn recursive_lock_verifies() {
        let v = verify(&mutex_client(&RecursiveLock::default(), 2, 1), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn recursive_nesting_verifies() {
        let v = verify(&recursive_scenario(RecursiveLock::default()), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn recursive_relaxed_release_fails() {
        let lock = RecursiveLock { release_mode: Mode::Rlx, ..RecursiveLock::default() };
        let v = verify(&mutex_client(&lock, 2, 1), &vmm());
        assert!(matches!(v, Verdict::Safety(_)), "{v}");
    }

    #[test]
    fn futex_mutex_verifies() {
        let v = verify(&mutex_client(&FutexMutex::default(), 2, 1), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn futex_mutex_two_rounds_verifies() {
        let v = verify(&mutex_client(&FutexMutex::default(), 2, 2), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn futex_mutex_relaxed_release_fails() {
        let lock = FutexMutex { release_mode: Mode::Rlx, ..FutexMutex::default() };
        let v = verify(&mutex_client(&lock, 2, 1), &vmm());
        assert!(matches!(v, Verdict::Safety(_)), "{v}");
    }

    #[test]
    fn futex_mutex_relaxed_acquire_fails() {
        let lock = FutexMutex { acquire_mode: Mode::Rlx, ..FutexMutex::default() };
        let v = verify(&mutex_client(&lock, 2, 1), &vmm());
        assert!(matches!(v, Verdict::Safety(_)), "{v}");
    }
}
