//! The flat spinlocks: CAS lock, TTAS lock (paper Fig. 3), ticket lock and
//! a counting semaphore.

use vsync_graph::Mode;
use vsync_lang::{ProgramBuilder, Reg, RmwOp, Test, ThreadBuilder};

use super::common::{LockModel, LOCK, LOCK2};

/// The CAS (test-and-set) lock: `await_while(cas(&l, 0, 1) fails)`.
///
/// The acquire RMW is a compound await primitive, exactly VSync's
/// `atomic_await_cas`; failed polls generate only reads (Bounded-Effect
/// principle).
#[derive(Debug, Clone, Copy)]
pub struct CasLock {
    /// Barrier mode of the acquiring CAS.
    pub acquire_mode: Mode,
    /// Barrier mode of the releasing store.
    pub release_mode: Mode,
}

impl Default for CasLock {
    fn default() -> Self {
        CasLock { acquire_mode: Mode::Acq, release_mode: Mode::Rel }
    }
}

impl LockModel for CasLock {
    fn name(&self) -> &'static str {
        "caslock"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        t.await_cas(Reg(0), LOCK, 0u64, 1u64, ("caslock.acquire.cas", self.acquire_mode));
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        t.store(LOCK, 0u64, ("caslock.release.store", self.release_mode));
    }
}

/// The plain test-and-set lock: `await(xchg(&l, 1) == 0)`.
///
/// The acquire is a single awaited exchange — the shape `vsync-shim`
/// recovers from recording `while lock.swap(1, Acquire) != 0 {}`, so this
/// entry doubles as the registry twin of the shim's TAS spinlock
/// (site names included).
#[derive(Debug, Clone, Copy)]
pub struct TasLock {
    /// Barrier mode of the acquiring exchange.
    pub acquire_mode: Mode,
    /// Barrier mode of the releasing store.
    pub release_mode: Mode,
}

impl Default for TasLock {
    fn default() -> Self {
        TasLock { acquire_mode: Mode::Acq, release_mode: Mode::Rel }
    }
}

impl LockModel for TasLock {
    fn name(&self) -> &'static str {
        "taslock"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        t.await_rmw(
            Reg(0),
            LOCK,
            Test::eq(0u64),
            RmwOp::Xchg,
            1u64,
            ("tas.acquire.xchg", self.acquire_mode),
        );
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        t.store(LOCK, 0u64, ("tas.release.store", self.release_mode));
    }
}

/// The TTAS lock of the paper's Fig. 3:
///
/// ```c
/// do { atomic_await_neq(&lock, 1); } while (atomic_xchg(&lock, 1) != 0);
/// ...
/// atomic_write(&lock, 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TtasLock {
    /// Mode of the polling read.
    pub await_mode: Mode,
    /// Mode of the exchanging RMW.
    pub xchg_mode: Mode,
    /// Mode of the releasing store.
    pub release_mode: Mode,
}

impl Default for TtasLock {
    fn default() -> Self {
        TtasLock { await_mode: Mode::Rlx, xchg_mode: Mode::Acq, release_mode: Mode::Rel }
    }
}

impl LockModel for TtasLock {
    fn name(&self) -> &'static str {
        "ttas"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        let retry = t.here_label();
        let acquired = t.label();
        t.await_neq(Reg(0), LOCK, 1u64, ("ttas.acquire.await", self.await_mode));
        t.xchg(Reg(1), LOCK, 1u64, ("ttas.acquire.xchg", self.xchg_mode));
        t.jmp_if(Reg(1), Test::eq(0u64), acquired);
        t.jmp(retry);
        t.bind(acquired);
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        t.store(LOCK, 0u64, ("ttas.release.store", self.release_mode));
    }
}

/// The classic ticket lock: `my = fetch_add(next); await(owner == my)`.
#[derive(Debug, Clone, Copy)]
pub struct TicketLock {
    /// Mode of the ticket-drawing fetch-add.
    pub fai_mode: Mode,
    /// Mode of the owner-polling read.
    pub await_mode: Mode,
    /// Mode of the owner-bumping store.
    pub release_mode: Mode,
}

impl Default for TicketLock {
    fn default() -> Self {
        TicketLock { fai_mode: Mode::Rlx, await_mode: Mode::Acq, release_mode: Mode::Rel }
    }
}

impl LockModel for TicketLock {
    fn name(&self) -> &'static str {
        "ticketlock"
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        // LOCK = next ticket dispenser, LOCK2 = current owner.
        t.fetch_add(Reg(0), LOCK, 1u64, ("ticket.acquire.fai", self.fai_mode));
        t.await_eq(Reg(1), LOCK2, Reg(0), ("ticket.acquire.await", self.await_mode));
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        // owner++ — only the owner writes it, a plain load/store suffices.
        t.load(Reg(2), LOCK2, ("ticket.release.load", Mode::Rlx));
        t.add(Reg(3), Reg(2), 1u64);
        t.store(LOCK2, Reg(3), ("ticket.release.store", self.release_mode));
    }
}

/// A counting semaphore used as a mutex (`permits = 1`): acquire polls for
/// a positive count and decrements with CAS; release is a fetch-add.
#[derive(Debug, Clone, Copy)]
pub struct Semaphore {
    /// Number of permits.
    pub permits: u64,
    /// Mode of the decrementing CAS.
    pub acquire_mode: Mode,
    /// Mode of the releasing fetch-add.
    pub release_mode: Mode,
}

impl Default for Semaphore {
    fn default() -> Self {
        Semaphore { permits: 1, acquire_mode: Mode::Acq, release_mode: Mode::Rel }
    }
}

impl LockModel for Semaphore {
    fn name(&self) -> &'static str {
        "semaphore"
    }

    fn emit_init(&self, pb: &mut ProgramBuilder) {
        pb.init(LOCK, self.permits);
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        let retry = t.here_label();
        let got = t.label();
        // Poll for a positive count.
        t.await_load(
            Reg(0),
            LOCK,
            Test::cmp(vsync_lang::Cmp::Gt, 0u64),
            ("sem.acquire.await", self.acquire_mode),
        );
        // Try to take one permit.
        t.op(Reg(1), vsync_lang::AluOp::Sub, Reg(0), 1u64);
        t.cas(Reg(2), LOCK, Reg(0), Reg(1), ("sem.acquire.cas", self.acquire_mode));
        t.jmp_if(Reg(2), Test::eq(Reg(0)), got);
        t.jmp(retry);
        t.bind(got);
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        t.rmw(Reg(3), LOCK, RmwOp::Add, 1u64, ("sem.release.add", self.release_mode));
    }
}

#[cfg(test)]
mod tests {
    use super::super::common::mutex_client;
    use super::*;
    use vsync_core::{verify, AmcConfig, Verdict};
    use vsync_model::ModelKind;

    fn vmm() -> AmcConfig {
        AmcConfig::with_model(ModelKind::Vmm)
    }

    #[test]
    fn caslock_two_threads_verifies() {
        let p = mutex_client(&CasLock::default(), 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn caslock_relaxed_release_fails() {
        let lock = CasLock { release_mode: Mode::Rlx, ..CasLock::default() };
        let p = mutex_client(&lock, 2, 1);
        assert!(matches!(verify(&p, &vmm()), Verdict::Safety(_)));
    }

    #[test]
    fn caslock_relaxed_acquire_fails() {
        let lock = CasLock { acquire_mode: Mode::Rlx, ..CasLock::default() };
        let p = mutex_client(&lock, 2, 1);
        assert!(matches!(verify(&p, &vmm()), Verdict::Safety(_)));
    }

    #[test]
    fn caslock_relaxed_everything_verifies_under_sc_model() {
        // The same broken barriers are fine under SC — it's a WMM bug.
        let lock = CasLock { acquire_mode: Mode::Rlx, release_mode: Mode::Rlx };
        let p = mutex_client(&lock, 2, 1);
        assert!(verify(&p, &AmcConfig::with_model(ModelKind::Sc)).is_verified());
    }

    #[test]
    fn taslock_all_models_verify() {
        for model in ModelKind::all() {
            let p = mutex_client(&TasLock::default(), 2, 1);
            let v = verify(&p, &AmcConfig::with_model(model));
            assert!(v.is_verified(), "{model}: {v}");
        }
    }

    #[test]
    fn taslock_relaxed_release_fails() {
        let lock = TasLock { release_mode: Mode::Rlx, ..TasLock::default() };
        let p = mutex_client(&lock, 2, 1);
        assert!(matches!(verify(&p, &vmm()), Verdict::Safety(_)));
    }

    #[test]
    fn ttas_two_threads_verifies() {
        let p = mutex_client(&TtasLock::default(), 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn ttas_two_acquires_each_verifies() {
        let p = mutex_client(&TtasLock::default(), 2, 2);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn ttas_relaxed_xchg_fails() {
        let lock = TtasLock { xchg_mode: Mode::Rlx, ..TtasLock::default() };
        let p = mutex_client(&lock, 2, 1);
        assert!(matches!(verify(&p, &vmm()), Verdict::Safety(_)));
    }

    #[test]
    fn ticket_two_threads_verifies() {
        let p = mutex_client(&TicketLock::default(), 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn ticket_relaxed_await_fails() {
        let lock = TicketLock { await_mode: Mode::Rlx, ..TicketLock::default() };
        let p = mutex_client(&lock, 2, 1);
        assert!(matches!(verify(&p, &vmm()), Verdict::Safety(_)));
    }

    #[test]
    fn ticket_is_fair_two_threads_complete() {
        // Await termination: every ticket holder eventually runs.
        let p = mutex_client(&TicketLock::default(), 2, 1);
        match verify(&p, &vmm()) {
            Verdict::Verified => {}
            v => panic!("{v}"),
        }
    }

    #[test]
    fn semaphore_binary_verifies() {
        let p = mutex_client(&Semaphore::default(), 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn semaphore_relaxed_release_fails() {
        let lock = Semaphore { release_mode: Mode::Rlx, ..Semaphore::default() };
        let p = mutex_client(&lock, 2, 1);
        assert!(matches!(verify(&p, &vmm()), Verdict::Safety(_)));
    }
}
