//! Study case §3.2: the MCS lock of an internal Huawei product.
//!
//! The implementation (Fig. 18) ends `mcslock_acquire` with a plain
//! `while (me->spin);` — no acquire barrier after the await. The releasing
//! thread's critical section is therefore not ordered before the new
//! owner's critical section, and the two increments of `x++` can overlap:
//! one update is lost (Fig. 19). The fix is an acquire barrier at the end
//! of the acquire path.
//!
//! Unlike the DPDK case this bug was reproduced on real hardware and causes
//! silent data corruption — a safety violation, not a hang.

use vsync_graph::Mode;
use vsync_lang::{Addr, Fixed, Program, ProgramBuilder, Reg, Test, ThreadBuilder};

use super::common::{node_addr, LockModel, COUNTER, LOCK, LOCKED_OFF, NEXT_OFF};

/// The Huawei-product MCS lock, with the missing barrier toggleable.
#[derive(Debug, Clone, Copy)]
pub struct HuaweiMcsLock {
    /// `false` reproduces the shipped code; `true` adds the acquire fence
    /// the paper recommends.
    pub fixed: bool,
}

impl HuaweiMcsLock {
    /// The shipped (buggy) version.
    pub fn buggy() -> Self {
        HuaweiMcsLock { fixed: false }
    }

    /// The version with the recommended fix.
    pub fn patched() -> Self {
        HuaweiMcsLock { fixed: true }
    }
}

impl LockModel for HuaweiMcsLock {
    fn name(&self) -> &'static str {
        if self.fixed {
            "huawei-mcs-fixed"
        } else {
            "huawei-mcs"
        }
    }

    fn emit_acquire(&self, t: &mut ThreadBuilder) {
        let me = node_addr(t.id());
        let done = t.label();
        let wait = t.label();
        // me->next = NULL; me->spin = 1 (plain stores in the original).
        t.store(me + NEXT_OFF, 0u64, ("hw.acquire.init_next", Mode::Rlx));
        t.store(me + LOCKED_OFF, 1u64, ("hw.acquire.init_spin", Mode::Rlx));
        // smp_wmb() — "consider to be SC fence" (Fig. 18 comment).
        t.fence(("hw.acquire.wmb", Mode::Sc));
        // prev = __sync_lock_test_and_set(tail, me) — acquire semantics.
        t.xchg(Reg(0), LOCK, me, ("hw.acquire.tas", Mode::Acq));
        t.jmp_if(Reg(0), Test::ne(0u64), wait);
        t.jmp(done);
        t.bind(wait);
        // prev->next = me (plain store).
        t.store(Addr::RegOff(Reg(0), NEXT_OFF), me, ("hw.acquire.store_next", Mode::Rlx));
        // smp_mb().
        t.fence(("hw.acquire.mb", Mode::Sc));
        // while (me->spin); — plain polling read.
        t.await_eq(Reg(1), me + LOCKED_OFF, 0u64, ("hw.acquire.await", Mode::Rlx));
        if self.fixed {
            // The missing barrier: e.g. smp_mb() / an acquire fence.
            t.fence(("hw.acquire.fix_fence", Mode::Acq));
        }
        t.bind(done);
    }

    fn emit_release(&self, t: &mut ThreadBuilder) {
        let me = node_addr(t.id());
        let pass = t.label();
        let done = t.label();
        // if (!me->next) { sc cmpxchg; wait for successor }
        t.load(Reg(2), me + NEXT_OFF, ("hw.release.load_next", Mode::Rlx));
        t.jmp_if(Reg(2), Test::ne(0u64), pass);
        t.cas(Reg(3), LOCK, me, 0u64, ("hw.release.cas", Mode::Sc));
        t.jmp_if(Reg(3), Test::eq(me), done);
        t.await_neq(Reg(2), me + NEXT_OFF, 0u64, ("hw.release.await_next", Mode::Rlx));
        t.bind(pass);
        // smp_mb(); me->next->spin = 0 (plain store after full fence).
        t.fence(("hw.release.mb", Mode::Sc));
        t.store(Addr::RegOff(Reg(2), LOCKED_OFF), 0u64, ("hw.release.store_spin", Mode::Rlx));
        t.bind(done);
    }
}

/// The Fig. 19 scenario: Bob is inside the critical section (`x++`), Alice
/// wants to enter and increment too. With the missing acquire barrier the
/// increments can overlap and the final value of `x` is 1 instead of 2.
pub fn huawei_scenario(fixed: bool) -> Program {
    let lock = HuaweiMcsLock { fixed };
    let bob = node_addr(1);
    let mut pb =
        ProgramBuilder::new(if fixed { "huawei-scenario-fixed" } else { "huawei-scenario" });
    // Bob holds the lock.
    pb.init(LOCK, bob);
    pb.init(COUNTER, 0);
    // Alice: acquire; x++; release.
    pb.thread(|t| {
        lock.emit_acquire(t);
        t.load(Reg(8), COUNTER, Fixed(Mode::Rlx));
        t.add(Reg(9), Reg(8), 1u64);
        t.store(COUNTER, Reg(9), Fixed(Mode::Rlx));
        lock.emit_release(t);
    });
    // Bob: x++ (already inside); release.
    pb.thread(|t| {
        t.load(Reg(8), COUNTER, Fixed(Mode::Rlx));
        t.add(Reg(9), Reg(8), 1u64);
        t.store(COUNTER, Reg(9), Fixed(Mode::Rlx));
        lock.emit_release(t);
    });
    pb.final_check(COUNTER, Test::eq(2u64), "both increments visible (no data corruption)");
    pb.build().expect("scenario is well-formed")
}

#[cfg(test)]
mod tests {
    use super::super::common::mutex_client;
    use super::*;
    use vsync_core::{verify, AmcConfig, Verdict};
    use vsync_model::ModelKind;

    fn vmm() -> AmcConfig {
        AmcConfig::with_model(ModelKind::Vmm)
    }

    #[test]
    fn buggy_scenario_loses_an_increment() {
        let v = verify(&huawei_scenario(false), &vmm());
        let Verdict::Safety(ce) = &v else {
            panic!("expected lost update (Fig. 19), got {v}");
        };
        assert!(ce.message.contains("no data corruption"));
    }

    #[test]
    fn fixed_scenario_verifies() {
        let v = verify(&huawei_scenario(true), &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn buggy_scenario_fine_under_sc() {
        let v = verify(&huawei_scenario(false), &AmcConfig::with_model(ModelKind::Sc));
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn fixed_lock_full_client_verifies() {
        let p = mutex_client(&HuaweiMcsLock::patched(), 2, 1);
        let v = verify(&p, &vmm());
        assert!(v.is_verified(), "{v}");
    }

    #[test]
    fn buggy_lock_full_client_violates() {
        let p = mutex_client(&HuaweiMcsLock::buggy(), 2, 1);
        assert!(matches!(verify(&p, &vmm()), Verdict::Safety(_)));
    }
}
