//! # vsync-locks
//!
//! Synchronization primitives in two forms:
//!
//! * [`model`] — lock algorithms written in the modeling language, checked
//!   and optimized by AMC: the paper's study cases (§3: DPDK MCS, Huawei
//!   MCS, Linux qspinlock) and the classic spinlock family;
//! * [`runtime`] — executable implementations of the 18 locks of the
//!   paper's Table 5, parameterized by barrier profile (sc-only vs
//!   optimized), run on the `vsync-sim` virtual-time multicore simulator.
//!
//! The [`registry`] maps canonical lock names to [`model`] entries with
//! catalog metadata, and [`SessionExt`] extends `vsync_core::Session`
//! with the name-based `Session::lock("qspinlock", 3, 1)` constructor.

#![warn(missing_docs)]

pub mod model;
pub mod registry;
pub mod runtime;

pub use registry::{LockEntry, MatrixEntry, SessionExt, UnknownLock};
