//! Flat (non-queued) runtime locks of Table 5: CAS lock, TTAS, ticket,
//! TWA, Anderson array lock, recursive CAS lock, reader-writer lock,
//! semaphore, and the two futex-based mutexes (musl-style and Drepper's
//! 3-state).
//!
//! Every lock takes a `sc` flag: `true` builds the paper's "sc-only"
//! variant (every barrier sequentially consistent), `false` the
//! VSYNC-optimized variant.

use vsync_graph::Mode;
use vsync_sim::{SimLock, SimThread};

use super::{m, LOCK2_ADDR, LOCK_ADDR, PRIV_BASE, SLOTS_BASE, WA_BASE};

/// CAS (test-and-set) spinlock — the paper's `spin` row.
#[derive(Debug)]
pub struct CasLockSim {
    /// sc-only variant?
    pub sc: bool,
}

impl SimLock for CasLockSim {
    fn name(&self) -> &'static str {
        "spin"
    }
    fn acquire(&self, ctx: &mut SimThread) {
        loop {
            if ctx.cas(LOCK_ADDR, 0, 1, m(self.sc, Mode::Acq)) == 0 {
                return;
            }
            ctx.spin_until(LOCK_ADDR, m(self.sc, Mode::Rlx), |v| v == 0);
        }
    }
    fn release(&self, ctx: &mut SimThread) {
        ctx.store(LOCK_ADDR, 0, m(self.sc, Mode::Rel));
    }
}

/// Test-and-test-and-set lock (paper Fig. 3) — row `ttas`.
#[derive(Debug)]
pub struct TtasSim {
    /// sc-only variant?
    pub sc: bool,
}

impl SimLock for TtasSim {
    fn name(&self) -> &'static str {
        "ttas"
    }
    fn acquire(&self, ctx: &mut SimThread) {
        loop {
            ctx.spin_until(LOCK_ADDR, m(self.sc, Mode::Rlx), |v| v != 1);
            if ctx.xchg(LOCK_ADDR, 1, m(self.sc, Mode::Acq)) == 0 {
                return;
            }
        }
    }
    fn release(&self, ctx: &mut SimThread) {
        ctx.store(LOCK_ADDR, 0, m(self.sc, Mode::Rel));
    }
}

/// Classic ticket lock — row `ticket`.
#[derive(Debug)]
pub struct TicketSim {
    /// sc-only variant?
    pub sc: bool,
}

impl SimLock for TicketSim {
    fn name(&self) -> &'static str {
        "ticket"
    }
    fn acquire(&self, ctx: &mut SimThread) {
        let my = ctx.fetch_add(LOCK_ADDR, 1, m(self.sc, Mode::Rlx));
        ctx.spin_until(LOCK2_ADDR, m(self.sc, Mode::Acq), |v| v == my);
    }
    fn release(&self, ctx: &mut SimThread) {
        let v = ctx.load(LOCK2_ADDR, m(self.sc, Mode::Rlx));
        ctx.store(LOCK2_ADDR, v + 1, m(self.sc, Mode::Rel));
    }
}

/// Ticket lock augmented with a waiting array (Dice & Kogan) — row `twa`.
///
/// Waiters far from the head spin on a hashed waiting-array slot instead of
/// the hot owner word; the releaser bumps the slot of the next ticket.
#[derive(Debug)]
pub struct TwaSim {
    /// sc-only variant?
    pub sc: bool,
}

const WA_MASK: u64 = 63;

impl SimLock for TwaSim {
    fn name(&self) -> &'static str {
        "twa"
    }
    fn acquire(&self, ctx: &mut SimThread) {
        let my = ctx.fetch_add(LOCK_ADDR, 1, m(self.sc, Mode::Rlx));
        let cur = ctx.load(LOCK2_ADDR, m(self.sc, Mode::Acq));
        if my.wrapping_sub(cur) > 1 {
            // Long-term waiting: park on the hashed array slot.
            let slot = WA_BASE + (my & WA_MASK) * 64;
            ctx.spin_until(slot, m(self.sc, Mode::Rlx), |v| v >= my);
        }
        ctx.spin_until(LOCK2_ADDR, m(self.sc, Mode::Acq), |v| v == my);
    }
    fn release(&self, ctx: &mut SimThread) {
        let v = ctx.load(LOCK2_ADDR, m(self.sc, Mode::Rlx));
        let next = v + 1;
        ctx.store(LOCK2_ADDR, next, m(self.sc, Mode::Rel));
        // Wake the long-term waiter of the following ticket.
        let slot = WA_BASE + ((next + 1) & WA_MASK) * 64;
        ctx.store(slot, next + 1, m(self.sc, Mode::Rel));
    }
}

/// Anderson's array-based queue lock — row `array`.
#[derive(Debug)]
pub struct ArraySim {
    /// sc-only variant?
    pub sc: bool,
}

const ARRAY_SLOTS: u64 = 128;

impl SimLock for ArraySim {
    fn name(&self) -> &'static str {
        "array"
    }
    fn init_mem(&self, mem: &mut std::collections::HashMap<u64, u64>) {
        mem.insert(SLOTS_BASE, 1); // slot 0 starts open
    }
    fn acquire(&self, ctx: &mut SimThread) {
        let my = ctx.fetch_add(LOCK_ADDR, 1, m(self.sc, Mode::AcqRel)) % ARRAY_SLOTS;
        ctx.spin_until(SLOTS_BASE + my * 64, m(self.sc, Mode::Acq), |v| v == 1);
        ctx.store(SLOTS_BASE + my * 64, 0, m(self.sc, Mode::Rlx)); // reset for reuse
        // Remember our slot for release.
        let priv_slot = PRIV_BASE + ctx.tid() as u64 * 64;
        ctx.store(priv_slot, my, m(self.sc, Mode::Rlx));
    }
    fn release(&self, ctx: &mut SimThread) {
        let priv_slot = PRIV_BASE + ctx.tid() as u64 * 64;
        let my = ctx.load(priv_slot, m(self.sc, Mode::Rlx));
        ctx.store(SLOTS_BASE + ((my + 1) % ARRAY_SLOTS) * 64, 1, m(self.sc, Mode::Rel));
    }
}

/// Recursive CAS lock (owner + depth) — row `recspin`.
#[derive(Debug)]
pub struct RecSpinSim {
    /// sc-only variant?
    pub sc: bool,
}

impl SimLock for RecSpinSim {
    fn name(&self) -> &'static str {
        "recspin"
    }
    fn acquire(&self, ctx: &mut SimThread) {
        let me = ctx.tid() as u64 + 1;
        if ctx.load(LOCK_ADDR, m(self.sc, Mode::Rlx)) == me {
            // Recursive re-entry: bump depth only.
            let d = ctx.load(LOCK2_ADDR, m(self.sc, Mode::Rlx));
            ctx.store(LOCK2_ADDR, d + 1, m(self.sc, Mode::Rlx));
            return;
        }
        loop {
            if ctx.cas(LOCK_ADDR, 0, me, m(self.sc, Mode::Acq)) == 0 {
                break;
            }
            ctx.spin_until(LOCK_ADDR, m(self.sc, Mode::Rlx), |v| v == 0);
        }
        ctx.store(LOCK2_ADDR, 1, m(self.sc, Mode::Rlx));
    }
    fn release(&self, ctx: &mut SimThread) {
        let d = ctx.load(LOCK2_ADDR, m(self.sc, Mode::Rlx));
        if d > 1 {
            ctx.store(LOCK2_ADDR, d - 1, m(self.sc, Mode::Rlx));
        } else {
            ctx.store(LOCK2_ADDR, 0, m(self.sc, Mode::Rlx));
            ctx.store(LOCK_ADDR, 0, m(self.sc, Mode::Rel));
        }
    }
}

/// Reader-writer lock, exercised on its writer side — row `rw`.
#[derive(Debug)]
pub struct RwSim {
    /// sc-only variant?
    pub sc: bool,
}

const RW_WRITER: u64 = 1 << 16;

impl SimLock for RwSim {
    fn name(&self) -> &'static str {
        "rw"
    }
    fn acquire(&self, ctx: &mut SimThread) {
        loop {
            if ctx.cas(LOCK_ADDR, 0, RW_WRITER, m(self.sc, Mode::Acq)) == 0 {
                return;
            }
            ctx.spin_until(LOCK_ADDR, m(self.sc, Mode::Rlx), |v| v == 0);
        }
    }
    fn release(&self, ctx: &mut SimThread) {
        ctx.store(LOCK_ADDR, 0, m(self.sc, Mode::Rel));
    }
}

/// Counting semaphore used as a mutex — row `semaphore`.
#[derive(Debug)]
pub struct SemaphoreSim {
    /// sc-only variant?
    pub sc: bool,
}

impl SimLock for SemaphoreSim {
    fn name(&self) -> &'static str {
        "semaphore"
    }
    fn init_mem(&self, mem: &mut std::collections::HashMap<u64, u64>) {
        mem.insert(LOCK_ADDR, 1);
    }
    fn acquire(&self, ctx: &mut SimThread) {
        loop {
            let v = ctx.spin_until(LOCK_ADDR, m(self.sc, Mode::Rlx), |v| v > 0);
            if ctx.cas(LOCK_ADDR, v, v - 1, m(self.sc, Mode::Acq)) == v {
                return;
            }
        }
    }
    fn release(&self, ctx: &mut SimThread) {
        ctx.fetch_add(LOCK_ADDR, 1, m(self.sc, Mode::Rel));
    }
}

/// musl-libc-style mutex: brief adaptive spinning, then futex wait —
/// row `musl`.
#[derive(Debug)]
pub struct MuslMutexSim {
    /// sc-only variant?
    pub sc: bool,
}

impl SimLock for MuslMutexSim {
    fn name(&self) -> &'static str {
        "musl"
    }
    fn acquire(&self, ctx: &mut SimThread) {
        // Fast path.
        if ctx.cas(LOCK_ADDR, 0, 1, m(self.sc, Mode::Acq)) == 0 {
            return;
        }
        // Brief spin phase (musl spins ~100 times when no waiters).
        for _ in 0..4 {
            ctx.pause();
            if ctx.cas(LOCK_ADDR, 0, 1, m(self.sc, Mode::Acq)) == 0 {
                return;
            }
        }
        // Contended: mark waiters and sleep.
        loop {
            let old = ctx.xchg(LOCK_ADDR, 2, m(self.sc, Mode::Acq));
            if old == 0 {
                return;
            }
            ctx.futex_wait(LOCK_ADDR, 2);
        }
    }
    fn release(&self, ctx: &mut SimThread) {
        let old = ctx.xchg(LOCK_ADDR, 0, m(self.sc, Mode::Rel));
        if old == 2 {
            ctx.futex_wake();
        }
    }
}

/// Drepper's 3-state futex mutex (0 free / 1 locked / 2 contended) —
/// row `mutex`.
#[derive(Debug)]
pub struct ThreeStateMutexSim {
    /// sc-only variant?
    pub sc: bool,
}

impl SimLock for ThreeStateMutexSim {
    fn name(&self) -> &'static str {
        "mutex"
    }
    fn acquire(&self, ctx: &mut SimThread) {
        let mut c = ctx.cas(LOCK_ADDR, 0, 1, m(self.sc, Mode::Acq));
        if c == 0 {
            return;
        }
        if c != 2 {
            c = ctx.xchg(LOCK_ADDR, 2, m(self.sc, Mode::Acq));
        }
        while c != 0 {
            ctx.futex_wait(LOCK_ADDR, 2);
            c = ctx.xchg(LOCK_ADDR, 2, m(self.sc, Mode::Acq));
        }
    }
    fn release(&self, ctx: &mut SimThread) {
        if ctx.xchg(LOCK_ADDR, 0, m(self.sc, Mode::Rel)) == 2 {
            ctx.futex_wake();
        }
    }
}
