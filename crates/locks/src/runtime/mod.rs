//! Runtime lock implementations for the simulator — the 18 algorithms of
//! the paper's Table 5 and the MCS implementation set of Fig. 27.
//!
//! Each algorithm comes in an sc-only (`seq`) and a VSYNC-optimized
//! (`opt`) variant, mirroring the paper's microbenchmark comparison.

mod flat;
mod queued;

pub use flat::{
    ArraySim, CasLockSim, MuslMutexSim, RecSpinSim, RwSim, SemaphoreSim, ThreeStateMutexSim,
    TicketSim, TtasSim, TwaSim,
};
pub use queued::{ClhSim, GlobalKind, HierarchicalSim, LocalKind, McsProfile, McsSim, QspinSim};

use vsync_graph::Mode;
use vsync_sim::{Arch, LockPair, SimLock};

/// The primary lock word.
pub const LOCK_ADDR: u64 = 0x40;
/// The secondary lock word (ticket owner, recursion depth, ...).
pub const LOCK2_ADDR: u64 = 0x80;
/// Per-thread queue nodes (primary).
pub const NODE_BASE: u64 = 0x2_0000;
/// Per-thread queue nodes (secondary, for two-level locks).
pub const NODE2_BASE: u64 = 0x4_0000;
/// Per-thread private bookkeeping slots.
pub const PRIV_BASE: u64 = 0x6_0000;
/// Anderson array slots.
pub const SLOTS_BASE: u64 = 0x8_0000;
/// TWA waiting array.
pub const WA_BASE: u64 = 0xA_0000;

/// Pick `opt` in the optimized variant, `Sc` in the sc-only variant.
pub(crate) fn m(sc: bool, opt: Mode) -> Mode {
    if sc {
        Mode::Sc
    } else {
        opt
    }
}

/// The 18 seq/opt lock pairs of Table 5 for one architecture (the
/// hierarchical locks need the NUMA topology).
pub fn table5_pairs(arch: Arch) -> Vec<LockPair> {
    let hier = |name: &'static str, local: LocalKind, global: GlobalKind, sc: bool| {
        Box::new(HierarchicalSim { display_name: name, local, global, sc, arch })
            as Box<dyn SimLock>
    };
    vec![
        LockPair {
            seq: Box::new(ArraySim { sc: true }),
            opt: Box::new(ArraySim { sc: false }),
        },
        LockPair {
            seq: Box::new(McsSim::new(McsProfile::certikos().all_sc("certikosmcs"))),
            opt: Box::new(McsSim::new(McsProfile { name: "certikosmcs", ..McsProfile::own() })),
        },
        LockPair {
            seq: Box::new(ClhSim { sc: true }),
            opt: Box::new(ClhSim { sc: false }),
        },
        LockPair {
            seq: hier("cmcsticket", LocalKind::Ticket, GlobalKind::Mcs, true),
            opt: hier("cmcsticket", LocalKind::Ticket, GlobalKind::Mcs, false),
        },
        LockPair {
            seq: hier("cmcsttas", LocalKind::Ttas, GlobalKind::Mcs, true),
            opt: hier("cmcsttas", LocalKind::Ttas, GlobalKind::Mcs, false),
        },
        LockPair {
            seq: hier("ctwamcs", LocalKind::Mcs, GlobalKind::Twa, true),
            opt: hier("ctwamcs", LocalKind::Mcs, GlobalKind::Twa, false),
        },
        LockPair {
            seq: hier("hclh", LocalKind::Clh, GlobalKind::Clh, true),
            opt: hier("hclh", LocalKind::Clh, GlobalKind::Clh, false),
        },
        LockPair {
            seq: Box::new(McsSim::new(McsProfile::own().all_sc("mcs"))),
            opt: Box::new(McsSim::new(McsProfile::own())),
        },
        LockPair {
            seq: Box::new(MuslMutexSim { sc: true }),
            opt: Box::new(MuslMutexSim { sc: false }),
        },
        LockPair {
            seq: Box::new(ThreeStateMutexSim { sc: true }),
            opt: Box::new(ThreeStateMutexSim { sc: false }),
        },
        LockPair {
            seq: Box::new(QspinSim { sc: true }),
            opt: Box::new(QspinSim { sc: false }),
        },
        LockPair {
            seq: Box::new(RecSpinSim { sc: true }),
            opt: Box::new(RecSpinSim { sc: false }),
        },
        LockPair { seq: Box::new(RwSim { sc: true }), opt: Box::new(RwSim { sc: false }) },
        LockPair {
            seq: Box::new(SemaphoreSim { sc: true }),
            opt: Box::new(SemaphoreSim { sc: false }),
        },
        LockPair {
            seq: Box::new(CasLockSim { sc: true }),
            opt: Box::new(CasLockSim { sc: false }),
        },
        LockPair {
            seq: Box::new(TicketSim { sc: true }),
            opt: Box::new(TicketSim { sc: false }),
        },
        LockPair { seq: Box::new(TtasSim { sc: true }), opt: Box::new(TtasSim { sc: false }) },
        LockPair { seq: Box::new(TwaSim { sc: true }), opt: Box::new(TwaSim { sc: false }) },
    ]
}

/// The four MCS implementations compared in Fig. 27: CertiKOS,
/// Concurrency Kit, DPDK, and our VSYNC-optimized one.
pub fn fig27_impls() -> Vec<Box<dyn SimLock>> {
    vec![
        Box::new(McsSim::new(McsProfile::certikos())),
        Box::new(McsSim::new(McsProfile::ck())),
        Box::new(McsSim::new(McsProfile::dpdk())),
        Box::new(McsSim::new(McsProfile::own())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_sim::{run_microbench, SimConfig, Workload};

    fn smoke(lock: &dyn SimLock, arch: Arch, threads: usize) -> u64 {
        let cfg = SimConfig { arch, threads, duration: 60_000, seed: 11, jitter_percent: 5 };
        let (count, _) = run_microbench(lock, &cfg, &Workload::default());
        assert!(count > 10, "{} made no progress: {count}", lock.name());
        count
    }

    #[test]
    fn every_table5_lock_makes_progress_contended() {
        for pair in table5_pairs(Arch::ArmV8) {
            smoke(pair.seq.as_ref(), Arch::ArmV8, 4);
            smoke(pair.opt.as_ref(), Arch::ArmV8, 4);
        }
    }

    #[test]
    fn every_table5_lock_makes_progress_single_threaded() {
        for pair in table5_pairs(Arch::X86_64) {
            smoke(pair.seq.as_ref(), Arch::X86_64, 1);
            smoke(pair.opt.as_ref(), Arch::X86_64, 1);
        }
    }

    #[test]
    fn optimized_is_not_slower_single_threaded_x86() {
        // The headline phenomenon of Table 5: on x86 with one thread the
        // optimized spinlocks beat the sc-only variants clearly.
        for pair in table5_pairs(Arch::X86_64) {
            let name = pair.seq.name();
            if matches!(name, "musl" | "mutex" | "semaphore") {
                continue; // futex/RMW-dominated: no meaningful gap expected
            }
            let seq = smoke(pair.seq.as_ref(), Arch::X86_64, 1);
            let opt = smoke(pair.opt.as_ref(), Arch::X86_64, 1);
            assert!(
                opt as f64 >= seq as f64 * 1.05,
                "{name}: opt {opt} should beat seq {seq} at 1 thread on x86"
            );
        }
    }

    #[test]
    fn fig27_impls_cover_the_paper_set() {
        let impls = fig27_impls();
        let names: Vec<&str> = impls.iter().map(|l| l.name()).collect();
        assert_eq!(names, vec!["certikosmcs", "ck-mcs", "dpdk-mcs", "mcs"]);
        for l in &impls {
            smoke(l.as_ref(), Arch::ArmV8, 4);
        }
    }

    #[test]
    fn own_mcs_beats_certikos_mcs() {
        // Fig. 27's shape: the sc-heavy CertiKOS MCS trails the optimized
        // implementation on ARM.
        let certikos = smoke(&McsSim::new(McsProfile::certikos()), Arch::ArmV8, 4);
        let own = smoke(&McsSim::new(McsProfile::own()), Arch::ArmV8, 4);
        assert!(own > certikos, "own {own} vs certikos {certikos}");
    }

    #[test]
    fn hierarchical_locks_are_numa_aware() {
        // Same algorithm, threads within one node vs across nodes: the
        // cross-node run must pay more per critical section.
        let lock = HierarchicalSim {
            display_name: "cmcsticket",
            local: LocalKind::Ticket,
            global: GlobalKind::Mcs,
            sc: false,
            arch: Arch::ArmV8,
        };
        let count = smoke(&lock, Arch::ArmV8, 8);
        assert!(count > 10, "{count}");
    }
}
