//! Queued and hierarchical runtime locks of Table 5: the MCS family
//! (including the Fig. 27 implementation comparison set), CLH, HCLH, the
//! qspinlock, and the cohort locks.

use vsync_graph::Mode;
use vsync_sim::{Arch, SimLock, SimThread};

use super::{m, LOCK2_ADDR, LOCK_ADDR, NODE2_BASE, NODE_BASE, PRIV_BASE};

fn node_of(tid: usize) -> u64 {
    NODE_BASE + tid as u64 * 0x80
}

const NEXT: u64 = 0;
const LOCKED: u64 = 0x40; // own cache line for the spin field

/// Barrier profile of an MCS implementation: which modes each access site
/// uses, and whether the (useless) DPDK fence is present. The Fig. 27
/// comparison is exactly a comparison of these profiles.
#[derive(Debug, Clone, Copy)]
pub struct McsProfile {
    /// Displayed name.
    pub name: &'static str,
    /// Tail exchange.
    pub xchg: Mode,
    /// `prev->next = me` publication.
    pub store_next: Mode,
    /// `me->locked` poll.
    pub poll: Mode,
    /// `me->next` read in release.
    pub load_next: Mode,
    /// Tail CAS in release.
    pub cas: Mode,
    /// Handover store.
    pub handover: Mode,
    /// Node initialization stores.
    pub init: Mode,
    /// Emit DPDK's `thread_fence(ACQ_REL)` in acquire.
    pub acquire_fence: Option<Mode>,
}

impl McsProfile {
    /// Our VSYNC-optimized MCS ("own impl." in Fig. 27).
    pub fn own() -> Self {
        McsProfile {
            name: "mcs",
            xchg: Mode::AcqRel,
            store_next: Mode::Rel,
            poll: Mode::Acq,
            load_next: Mode::Acq,
            cas: Mode::Rel,
            handover: Mode::Rel,
            init: Mode::Rlx,
            acquire_fence: None,
        }
    }

    /// DPDK v20.05 barriers (with the superfluous fence).
    pub fn dpdk() -> Self {
        McsProfile {
            name: "dpdk-mcs",
            xchg: Mode::AcqRel,
            store_next: Mode::Rel, // post-fix barriers; perf shape unchanged
            poll: Mode::Acq,
            load_next: Mode::Acq,
            cas: Mode::AcqRel,
            handover: Mode::Rel,
            init: Mode::Rlx,
            acquire_fence: Some(Mode::AcqRel),
        }
    }

    /// Concurrency-kit-style MCS (fence-based synchronization).
    pub fn ck() -> Self {
        McsProfile {
            name: "ck-mcs",
            xchg: Mode::AcqRel,
            store_next: Mode::Rel,
            poll: Mode::Acq,
            load_next: Mode::Acq,
            cas: Mode::Sc,
            handover: Mode::Rel,
            init: Mode::Rlx,
            acquire_fence: Some(Mode::Sc),
        }
    }

    /// CertiKOS-style: everything sequentially consistent.
    pub fn certikos() -> Self {
        McsProfile {
            name: "certikosmcs",
            xchg: Mode::Sc,
            store_next: Mode::Sc,
            poll: Mode::Sc,
            load_next: Mode::Sc,
            cas: Mode::Sc,
            handover: Mode::Sc,
            init: Mode::Sc,
            acquire_fence: Some(Mode::Sc),
        }
    }

    /// The sc-only version of this profile.
    pub fn all_sc(self, name: &'static str) -> Self {
        McsProfile {
            name,
            xchg: Mode::Sc,
            store_next: Mode::Sc,
            poll: Mode::Sc,
            load_next: Mode::Sc,
            cas: Mode::Sc,
            handover: Mode::Sc,
            init: Mode::Sc,
            acquire_fence: self.acquire_fence.map(|_| Mode::Sc),
        }
    }
}

/// An MCS lock with a given barrier profile.
#[derive(Debug)]
pub struct McsSim {
    /// Barrier profile.
    pub profile: McsProfile,
}

impl McsSim {
    /// Construct from a profile.
    pub fn new(profile: McsProfile) -> Self {
        McsSim { profile }
    }

    fn acquire_at(&self, ctx: &mut SimThread, base: u64, tail: u64) {
        let p = &self.profile;
        let me = base + ctx.tid() as u64 * 0x80;
        ctx.store(me + NEXT, 0, p.init);
        ctx.store(me + LOCKED, 1, p.init);
        let prev = ctx.xchg(tail, me, p.xchg);
        if prev != 0 {
            ctx.store(prev + NEXT, me, p.store_next);
            if let Some(f) = p.acquire_fence {
                ctx.fence(f);
            }
            ctx.spin_until(me + LOCKED, p.poll, |v| v == 0);
        }
    }

    fn release_at(&self, ctx: &mut SimThread, base: u64, tail: u64) {
        let p = &self.profile;
        let me = base + ctx.tid() as u64 * 0x80;
        let mut next = ctx.load(me + NEXT, p.load_next);
        if next == 0 {
            if ctx.cas(tail, me, 0, p.cas) == me {
                return;
            }
            next = ctx.spin_until(me + NEXT, p.load_next, |v| v != 0);
        }
        ctx.store(next + LOCKED, 0, p.handover);
    }
}

impl SimLock for McsSim {
    fn name(&self) -> &'static str {
        self.profile.name
    }
    fn acquire(&self, ctx: &mut SimThread) {
        self.acquire_at(ctx, NODE_BASE, LOCK_ADDR);
    }
    fn release(&self, ctx: &mut SimThread) {
        self.release_at(ctx, NODE_BASE, LOCK_ADDR);
    }
}

/// CLH lock with node recycling (per-thread node/pred pointers live in
/// private simulated memory) — row `clh`.
#[derive(Debug)]
pub struct ClhSim {
    /// sc-only variant?
    pub sc: bool,
}

/// The CLH dummy node lives on its own line, clear of every per-thread
/// node (tids 0..=127 occupy NODE_BASE .. NODE_BASE + 128*0x80).
const CLH_DUMMY: u64 = NODE_BASE + 200 * 0x80;
const CLH_MY: u64 = 0; // offset in the private slot
const CLH_PRED: u64 = 8;

impl ClhSim {
    fn priv_slot(ctx: &SimThread) -> u64 {
        PRIV_BASE + ctx.tid() as u64 * 64
    }
}

impl SimLock for ClhSim {
    fn name(&self) -> &'static str {
        "clh"
    }
    fn init_mem(&self, mem: &mut std::collections::HashMap<u64, u64>) {
        mem.insert(LOCK_ADDR, CLH_DUMMY);
        for tid in 0..128 {
            mem.insert(PRIV_BASE + tid * 64 + CLH_MY, NODE_BASE + tid * 0x80);
        }
    }
    fn acquire(&self, ctx: &mut SimThread) {
        let slot = ClhSim::priv_slot(ctx);
        let node = ctx.load(slot + CLH_MY, Mode::Rlx);
        ctx.store(node + LOCKED, 1, m(self.sc, Mode::Rlx));
        let pred = ctx.xchg(LOCK_ADDR, node, m(self.sc, Mode::AcqRel));
        ctx.store(slot + CLH_PRED, pred, Mode::Rlx);
        ctx.spin_until(pred + LOCKED, m(self.sc, Mode::Acq), |v| v == 0);
    }
    fn release(&self, ctx: &mut SimThread) {
        let slot = ClhSim::priv_slot(ctx);
        let node = ctx.load(slot + CLH_MY, Mode::Rlx);
        let pred = ctx.load(slot + CLH_PRED, Mode::Rlx);
        ctx.store(node + LOCKED, 0, m(self.sc, Mode::Rel));
        ctx.store(slot + CLH_MY, pred, Mode::Rlx); // recycle predecessor's node
    }
}

/// Two-level hierarchical lock: a per-NUMA-node local lock plus a global
/// lock. Used for `hclh` (CLH/CLH) and the cohort rows (`cmcsticket`,
/// `cmcsttas`, `ctwamcs`).
///
/// Simplification vs. the literature: no cohort passing (the local holder
/// always acquires the global lock); NUMA locality benefits still accrue
/// because the local lock line stays on-node. DESIGN.md §5 records this.
#[derive(Debug)]
pub struct HierarchicalSim {
    /// Displayed name.
    pub display_name: &'static str,
    /// Local (per-node) lock kind.
    pub local: LocalKind,
    /// Global lock kind.
    pub global: GlobalKind,
    /// sc-only variant?
    pub sc: bool,
    /// Platform (for NUMA node lookup).
    pub arch: Arch,
}

/// Local-lock flavors for [`HierarchicalSim`].
#[derive(Debug, Clone, Copy)]
pub enum LocalKind {
    /// Ticket lock per node.
    Ticket,
    /// TTAS lock per node.
    Ttas,
    /// MCS queue per node.
    Mcs,
    /// CLH queue per node.
    Clh,
}

/// Global-lock flavors for [`HierarchicalSim`].
#[derive(Debug, Clone, Copy)]
pub enum GlobalKind {
    /// Global MCS queue.
    Mcs,
    /// Global TWA (ticket + waiting array).
    Twa,
    /// Global CLH queue.
    Clh,
}

const LOCAL_BASE: u64 = 0xC0_0000; // per-node lock words, one line each

impl HierarchicalSim {
    fn local_word(&self, ctx: &SimThread) -> u64 {
        let node = self.arch.node_of(ctx.core());
        LOCAL_BASE + node as u64 * 0x1000
    }

    fn local_acquire(&self, ctx: &mut SimThread) {
        let w = self.local_word(ctx);
        match self.local {
            LocalKind::Ttas => loop {
                ctx.spin_until(w, m(self.sc, Mode::Rlx), |v| v == 0);
                if ctx.xchg(w, 1, m(self.sc, Mode::Acq)) == 0 {
                    return;
                }
            },
            LocalKind::Ticket => {
                let my = ctx.fetch_add(w, 1, m(self.sc, Mode::Rlx));
                ctx.spin_until(w + 0x40, m(self.sc, Mode::Acq), |v| v == my);
            }
            LocalKind::Mcs | LocalKind::Clh => {
                // Queue on the node-local tail; reuse the MCS shape with
                // per-thread nodes in the second node region.
                let mcs = McsSim::new(if self.sc {
                    McsProfile::own().all_sc("local")
                } else {
                    McsProfile::own()
                });
                mcs.acquire_at(ctx, NODE2_BASE, w);
            }
        }
    }

    fn local_release(&self, ctx: &mut SimThread) {
        let w = self.local_word(ctx);
        match self.local {
            LocalKind::Ttas => ctx.store(w, 0, m(self.sc, Mode::Rel)),
            LocalKind::Ticket => {
                let v = ctx.load(w + 0x40, m(self.sc, Mode::Rlx));
                ctx.store(w + 0x40, v + 1, m(self.sc, Mode::Rel));
            }
            LocalKind::Mcs | LocalKind::Clh => {
                let mcs = McsSim::new(if self.sc {
                    McsProfile::own().all_sc("local")
                } else {
                    McsProfile::own()
                });
                mcs.release_at(ctx, NODE2_BASE, w);
            }
        }
    }

    fn global_acquire(&self, ctx: &mut SimThread) {
        match self.global {
            GlobalKind::Mcs | GlobalKind::Clh => {
                let mcs = McsSim::new(if self.sc {
                    McsProfile::own().all_sc("global")
                } else {
                    McsProfile::own()
                });
                mcs.acquire_at(ctx, NODE_BASE, LOCK_ADDR);
            }
            GlobalKind::Twa => {
                let my = ctx.fetch_add(LOCK_ADDR, 1, m(self.sc, Mode::Rlx));
                ctx.spin_until(LOCK2_ADDR, m(self.sc, Mode::Acq), |v| v == my);
            }
        }
    }

    fn global_release(&self, ctx: &mut SimThread) {
        match self.global {
            GlobalKind::Mcs | GlobalKind::Clh => {
                let mcs = McsSim::new(if self.sc {
                    McsProfile::own().all_sc("global")
                } else {
                    McsProfile::own()
                });
                mcs.release_at(ctx, NODE_BASE, LOCK_ADDR);
            }
            GlobalKind::Twa => {
                let v = ctx.load(LOCK2_ADDR, m(self.sc, Mode::Rlx));
                ctx.store(LOCK2_ADDR, v + 1, m(self.sc, Mode::Rel));
            }
        }
    }
}

impl SimLock for HierarchicalSim {
    fn name(&self) -> &'static str {
        self.display_name
    }
    fn acquire(&self, ctx: &mut SimThread) {
        self.local_acquire(ctx);
        self.global_acquire(ctx);
    }
    fn release(&self, ctx: &mut SimThread) {
        self.global_release(ctx);
        self.local_release(ctx);
    }
}

/// The Linux qspinlock (4.4-style pending bit + MCS queue) — row `qspin`.
#[derive(Debug)]
pub struct QspinSim {
    /// sc-only variant?
    pub sc: bool,
}

const Q_LOCKED: u64 = 0x1;
const Q_PENDING: u64 = 0x100;
const Q_LP_MASK: u64 = 0xffff;

impl SimLock for QspinSim {
    fn name(&self) -> &'static str {
        "qspin"
    }
    fn acquire(&self, ctx: &mut SimThread) {
        if ctx.cas(LOCK_ADDR, 0, Q_LOCKED, m(self.sc, Mode::Acq)) == 0 {
            return;
        }
        'slow: loop {
            let mut val = ctx.load(LOCK_ADDR, m(self.sc, Mode::Rlx));
            if val == Q_PENDING {
                val = ctx.spin_until(LOCK_ADDR, m(self.sc, Mode::Rlx), |v| v != Q_PENDING);
            }
            if val & !0xff == 0 {
                // Try to become the pending waiter.
                if ctx.cas(LOCK_ADDR, val, val | Q_PENDING, m(self.sc, Mode::Acq)) == val {
                    ctx.spin_until(LOCK_ADDR, m(self.sc, Mode::Acq), |v| v & 0xff == 0);
                    ctx.fetch_sub(LOCK_ADDR, Q_PENDING - Q_LOCKED, m(self.sc, Mode::Rlx));
                    return;
                }
                continue 'slow;
            }
            // Queue path.
            let me = node_of(ctx.tid());
            let my_tail = (ctx.tid() as u64 + 1) << 16;
            ctx.store(me + NEXT, 0, m(self.sc, Mode::Rlx));
            ctx.store(me + LOCKED, 1, m(self.sc, Mode::Rlx));
            let old = loop {
                let v = ctx.load(LOCK_ADDR, m(self.sc, Mode::Rlx));
                if ctx.cas(LOCK_ADDR, v, (v & Q_LP_MASK) | my_tail, m(self.sc, Mode::AcqRel)) == v
                {
                    break v;
                }
            };
            let prev_tail = old >> 16;
            if prev_tail != 0 {
                let prev = NODE_BASE + (prev_tail - 1) * 0x80;
                ctx.store(prev + NEXT, me, m(self.sc, Mode::Rel));
                ctx.spin_until(me + LOCKED, m(self.sc, Mode::Acq), |v| v == 0);
            }
            let val = ctx.spin_until(LOCK_ADDR, m(self.sc, Mode::Acq), |v| v & Q_LP_MASK == 0);
            if val == my_tail && ctx.cas(LOCK_ADDR, my_tail, Q_LOCKED, m(self.sc, Mode::Acq)) == my_tail {
                return;
            }
            ctx.fetch_or(LOCK_ADDR, Q_LOCKED, m(self.sc, Mode::Rlx));
            let next = ctx.spin_until(me + NEXT, m(self.sc, Mode::Rlx), |v| v != 0);
            ctx.store(next + LOCKED, 0, m(self.sc, Mode::Rel));
            return;
        }
    }
    fn release(&self, ctx: &mut SimThread) {
        // Linux releases by storing 0 to the locked *byte*
        // (smp_store_release((u8 *)&lock->val, 0)).
        ctx.store_masked(LOCK_ADDR, 0xff, 0, m(self.sc, Mode::Rel));
    }
}
