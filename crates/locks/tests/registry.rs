//! The registry is the single source of truth for the lock catalog:
//! every catalog entry resolves by name, names are canonical (equal to
//! the built lock's own `name()`), and the session constructor works
//! end-to-end.

use vsync_core::Session;
use vsync_locks::model::all_lock_models;
use vsync_locks::registry::{by_name, catalog, entry, names};
use vsync_locks::SessionExt as _;

/// Satellite requirement: every `all_lock_models()` entry is reachable
/// `by_name`, and the resolved lock is the same algorithm (same name).
#[test]
fn every_catalog_lock_is_reachable_by_name() {
    let locks = all_lock_models();
    assert_eq!(locks.len(), catalog().len());
    for lock in locks {
        let resolved = by_name(lock.name())
            .unwrap_or_else(|| panic!("{} not reachable by_name", lock.name()));
        assert_eq!(resolved.name(), lock.name());
    }
}

/// Registry names are canonical: `entry(n).build().name() == n`, no
/// duplicates, and metadata is filled in.
#[test]
fn registry_names_are_canonical_and_unique() {
    let ns = names();
    for n in &ns {
        let e = entry(n).expect("listed name resolves");
        assert_eq!(e.build().name(), *n, "registry key must match LockModel::name()");
        assert!(!e.summary.is_empty(), "{n}: missing summary");
        assert!(!e.family.is_empty(), "{n}: missing family");
    }
    let mut sorted = ns.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ns.len(), "duplicate registry names");
}

#[test]
fn unknown_names_resolve_to_none_and_helpful_errors() {
    assert!(by_name("no-such-lock").is_none());
    let err = Session::try_lock("no-such-lock", 2, 1).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no-such-lock"), "{msg}");
    assert!(msg.contains("qspinlock"), "error should list known locks: {msg}");
}

/// The name-based session front door verifies a real lock.
#[test]
fn session_lock_runs_a_catalog_entry() {
    let report = Session::lock("ttas", 2, 1).run();
    assert!(report.is_verified(), "{}", report.render());
    assert_eq!(report.program, "ttas");
    assert_eq!(report.models.len(), 1);
}

/// Clients built through the registry match clients built by hand.
#[test]
fn registry_client_matches_manual_client() {
    let via_registry = entry("caslock").unwrap().client(2, 1);
    let by_hand =
        vsync_locks::model::mutex_client(&vsync_locks::model::CasLock::default(), 2, 1);
    assert_eq!(via_registry.name(), by_hand.name());
    assert_eq!(via_registry.num_threads(), by_hand.num_threads());
}
