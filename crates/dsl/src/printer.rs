//! Pretty-printing: canonical formatting of parsed files and DSL
//! emission for in-memory [`Program`]s.
//!
//! Two levels share one rendering core:
//!
//! * [`format_file`] / [`format_source`] — canonicalize a *parsed* file,
//!   preserving location names, labels, thread templates, integer bases
//!   and (full-line) comments. `vsync fmt` and the corpus `--check` CI
//!   job are built on this; the output is a fixpoint
//!   (`format ∘ parse ∘ format = format`).
//! * [`print_program`] / [`print_test`] — emit DSL text from a lowered
//!   [`Program`], with raw addresses, synthesized `L<pc>` labels and
//!   explicit site names. Re-parsing the output reproduces the program
//!   structurally (`parse ∘ print = id`, the round-trip property).

use vsync_lang::{Addr, Cmp, Instr, ModeRef, Operand, Program, Test};

use crate::ast::{
    AddrAst, Expectation, FinalCheckAst, IntLit, Item, LocDecl, LocName, OperandAst, RhsAst,
    SiteAst, SourceFile, Stmt, StmtKind, TestAst,
};
use crate::diag::{Diagnostic, Span};
use crate::lexer::Comment;
use crate::lower::LitmusTest;
use crate::parser::{alu_name, parse};

/// Parse and canonically reformat a litmus source file.
///
/// # Errors
///
/// Returns the parse error for malformed input.
pub fn format_source(src: &str) -> Result<String, Diagnostic> {
    Ok(format_file(&parse(src)?))
}

/// Canonically format a parsed file (see the module docs).
#[must_use]
pub fn format_file(file: &SourceFile) -> String {
    let mut out = String::new();
    let mut comments = file.comments.iter().peekable();
    let mut flush = |out: &mut String, before: u32, indent: &str| {
        while let Some(c) = comments.peek() {
            if before != 0 && c.line >= before {
                break;
            }
            out.push_str(indent);
            if c.text.is_empty() {
                out.push_str("#\n");
            } else {
                out.push_str(&format!("# {}\n", c.text));
            }
            comments.next();
        }
    };
    flush(&mut out, file.header_line.max(1), "");
    out.push_str(&format!("litmus {}\n", quote(&file.name)));
    let mut prev_expect = false;
    for item in &file.items {
        let line = item.line();
        let is_expect = matches!(item, Item::Expect { .. });
        let mut chunk = String::new();
        flush(&mut chunk, line, "");
        let had_comments = !chunk.is_empty();
        if !(prev_expect && is_expect && !had_comments) {
            out.push('\n');
        }
        out.push_str(&chunk);
        prev_expect = is_expect;
        match item {
            Item::Init { decls, .. } => {
                out.push_str("init {\n");
                for d in decls {
                    flush(&mut out, d.line, "  ");
                    out.push_str(&format!("  {}\n", fmt_loc_decl(d)));
                }
                out.push_str("}\n");
            }
            Item::Thread { count, stmts, .. } => {
                match count {
                    Some((n, _)) => out.push_str(&format!("thread[{n}] {{\n")),
                    None => out.push_str("thread {\n"),
                }
                for s in stmts {
                    flush(&mut out, s.line, "  ");
                    out.push_str(&format!("  {}\n", fmt_stmt(&s.kind)));
                }
                out.push_str("}\n");
            }
            Item::Final { checks, .. } => {
                out.push_str("final {\n");
                for c in checks {
                    flush(&mut out, c.line, "  ");
                    out.push_str(&format!("  {}\n", fmt_final_check(c)));
                }
                out.push_str("}\n");
            }
            Item::Expect { model, verdict, executions, .. } => {
                let model = model.to_string().to_ascii_lowercase();
                match executions {
                    Some(n) => out.push_str(&format!("expect {model}: {verdict} = {n}\n")),
                    None => out.push_str(&format!("expect {model}: {verdict}\n")),
                }
            }
            Item::Symmetry { groups, .. } => {
                out.push_str("symmetry");
                for g in groups {
                    out.push_str(" {");
                    for (i, _) in g {
                        out.push_str(&format!(" {i}"));
                    }
                    out.push_str(" }");
                }
                out.push('\n');
            }
        }
    }
    let mut tail = String::new();
    flush(&mut tail, 0, "");
    if !tail.is_empty() {
        out.push('\n');
        out.push_str(&tail);
    }
    out
}

/// Emit DSL text for a compiled test (program + expectations).
#[must_use]
pub fn print_test(test: &LitmusTest) -> String {
    format_file(&program_to_ast(&test.program, &test.expectations))
}

/// Emit DSL text for a program (no expectations). Re-parsing the output
/// reproduces the program structurally — see the module docs.
#[must_use]
pub fn print_program(program: &Program) -> String {
    format_file(&program_to_ast(program, &[]))
}

// ---- rendering helpers ------------------------------------------------

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && s != "if"
        && s != "until"
}

/// Is `s` printable as a bare (possibly dotted) site name?
fn is_dotted_ident(s: &str) -> bool {
    !s.is_empty() && s.split('.').all(is_ident)
}

fn fmt_loc_decl(d: &LocDecl) -> String {
    match &d.name {
        LocName::Named(n, _) => {
            let mut s = n.clone();
            if let Some(a) = d.addr {
                s.push_str(&format!(" @ {a}"));
            }
            if let Some(v) = d.init {
                s.push_str(&format!(" = {v}"));
            }
            s
        }
        LocName::Addr(a, _) => {
            format!("{a} = {}", d.init.unwrap_or(IntLit::dec(0)))
        }
    }
}

fn fmt_site(site: &SiteAst) -> String {
    let mut s = format!(".{}", site.mode);
    if site.fixed {
        s.push('!');
    }
    if let Some((name, _)) = &site.name {
        s.push('@');
        if is_dotted_ident(name) {
            s.push_str(name);
        } else {
            s.push_str(&quote(name));
        }
    }
    s
}

fn fmt_operand(o: &OperandAst) -> String {
    match o {
        OperandAst::Reg(r, _) => format!("r{r}"),
        OperandAst::Lit(l, _) => l.to_string(),
        OperandAst::Name(n, _) => n.clone(),
    }
}

fn fmt_addr(a: &AddrAst) -> String {
    match a {
        AddrAst::Name { name, offset: None, .. } => name.clone(),
        AddrAst::Name { name, offset: Some(o), .. } => format!("{name} + {o}"),
        AddrAst::Lit(l, _) => l.to_string(),
        AddrAst::Reg { reg, offset: None, .. } => format!("[r{reg}]"),
        AddrAst::Reg { reg, offset: Some(o), .. } => format!("[r{reg} + {o}]"),
    }
}

fn fmt_test(t: &TestAst) -> String {
    match &t.mask {
        Some(m) => format!("& {} {} {}", fmt_operand(m), t.cmp, fmt_operand(&t.rhs)),
        None => format!("{} {}", t.cmp, fmt_operand(&t.rhs)),
    }
}

fn fmt_final_check(c: &FinalCheckAst) -> String {
    let mut s = format!("{} {}", fmt_addr(&c.loc), fmt_test(&c.test));
    if let Some(m) = &c.msg {
        s.push_str(&format!(" : {}", quote(m)));
    }
    s
}

fn fmt_stmt(kind: &StmtKind) -> String {
    match kind {
        StmtKind::Label(name, _) => format!("{name}:"),
        StmtKind::Store { site, addr, src } => {
            format!("store{} {}, {}", fmt_site(site), fmt_addr(addr), fmt_operand(src))
        }
        StmtKind::Fence { site } => format!("fence{}", fmt_site(site)),
        StmtKind::Jmp { target: (name, _), cond } => match cond {
            None => format!("jmp {name}"),
            Some((src, test)) => format!("jmp {name} if {} {}", fmt_operand(src), fmt_test(test)),
        },
        StmtKind::Assert { src, test, msg } => {
            let mut s = format!("assert {} {}", fmt_operand(src), fmt_test(test));
            if let Some(m) = msg {
                s.push_str(&format!(", {}", quote(m)));
            }
            s
        }
        StmtKind::Nop => "nop".to_owned(),
        StmtKind::Assign { dst: (dst, _), rhs } => {
            let rhs = match rhs {
                RhsAst::Load { site, addr } => format!("load{} {}", fmt_site(site), fmt_addr(addr)),
                RhsAst::Rmw { op, site, addr, operand } => format!(
                    "rmw.{op}{} {}, {}",
                    fmt_site(site),
                    fmt_addr(addr),
                    fmt_operand(operand)
                ),
                RhsAst::Cas { site, addr, expected, new } => format!(
                    "cas{} {}, {}, {}",
                    fmt_site(site),
                    fmt_addr(addr),
                    fmt_operand(expected),
                    fmt_operand(new)
                ),
                // Unmasked equality awaits print as the `await_eq` /
                // `await_neq` sugar — the canonical (and more readable)
                // spelling; parsing either form yields the same program.
                RhsAst::AwaitLoad { site, addr, until: TestAst { mask: None, cmp: Cmp::Eq, rhs } } => {
                    format!("await_eq{} {}, {}", fmt_site(site), fmt_addr(addr), fmt_operand(rhs))
                }
                RhsAst::AwaitLoad { site, addr, until: TestAst { mask: None, cmp: Cmp::Ne, rhs } } => {
                    format!("await_neq{} {}, {}", fmt_site(site), fmt_addr(addr), fmt_operand(rhs))
                }
                RhsAst::AwaitLoad { site, addr, until } => format!(
                    "await_load{} {} until {}",
                    fmt_site(site),
                    fmt_addr(addr),
                    fmt_test(until)
                ),
                RhsAst::AwaitRmw { op, site, addr, operand, until } => format!(
                    "await_rmw.{op}{} {}, {} until {}",
                    fmt_site(site),
                    fmt_addr(addr),
                    fmt_operand(operand),
                    fmt_test(until)
                ),
                RhsAst::AwaitCas { site, addr, expected, new } => format!(
                    "await_cas{} {}, {}, {}",
                    fmt_site(site),
                    fmt_addr(addr),
                    fmt_operand(expected),
                    fmt_operand(new)
                ),
                RhsAst::Mov { src } => format!("mov {}", fmt_operand(src)),
                RhsAst::Alu { op, a, b } => {
                    format!("{} {}, {}", alu_name(*op), fmt_operand(a), fmt_operand(b))
                }
            };
            format!("r{dst} = {rhs}")
        }
    }
}

// ---- Program → AST ----------------------------------------------------

const DUMMY: Span = Span { line: 0, col: 0, len: 0 };

/// Rebuild an AST from a lowered program (raw addresses, synthesized
/// labels, explicit site names) plus expectation annotations.
#[must_use]
pub fn program_to_ast(program: &Program, expectations: &[Expectation]) -> SourceFile {
    let mut items = Vec::new();
    if !program.init().is_empty() {
        let decls = program
            .init()
            .iter()
            .map(|(&loc, &val)| LocDecl {
                name: LocName::Addr(IntLit::hex(loc), DUMMY),
                addr: None,
                init: Some(IntLit::dec(val)),
                line: 0,
            })
            .collect();
        items.push(Item::Init { decls, line: 0 });
    }
    for t in 0..program.num_threads() as u32 {
        items.push(Item::Thread {
            count: None,
            stmts: thread_to_stmts(program, t),
            line: 0,
        });
    }
    if !program.final_checks().is_empty() {
        let checks = program
            .final_checks()
            .iter()
            .map(|c| FinalCheckAst {
                loc: AddrAst::Lit(IntLit::hex(c.loc), DUMMY),
                test: test_to_ast(&c.test),
                msg: Some(c.msg.clone()),
                line: 0,
            })
            .collect();
        items.push(Item::Final { checks, line: 0 });
    }
    if let Some(declared) = program.declared_symmetry() {
        // Only emit an explicit section when the declaration says more
        // than template detection would rediscover at parse time.
        let mut undeclared = program.clone();
        undeclared.clear_symmetry();
        if &undeclared.symmetry_partition() != declared {
            // `ThreadPartition::groups` drops singletons; the section
            // must mention every thread, so rebuild the full classes.
            let mut groups: Vec<Vec<(u64, Span)>> = Vec::new();
            for t in 0..program.num_threads() as u32 {
                match groups.iter_mut().find(|g| declared.same_class(g[0].0 as u32, t)) {
                    Some(g) => g.push((t as u64, DUMMY)),
                    None => groups.push(vec![(t as u64, DUMMY)]),
                }
            }
            items.push(Item::Symmetry { groups, line: 0 });
        }
    }
    for e in expectations {
        items.push(Item::Expect {
            model: e.model,
            model_span: DUMMY,
            verdict: e.verdict,
            executions: e.executions,
            line: 0,
        });
    }
    SourceFile {
        name: program.name().to_owned(),
        name_span: DUMMY,
        items,
        header_line: 0,
        comments: Vec::<Comment>::new(),
        lines: Vec::new(),
    }
}

fn site_to_ast(program: &Program, r: ModeRef) -> SiteAst {
    let site = &program.sites()[r.0 as usize];
    SiteAst {
        mode: site.mode,
        mode_span: DUMMY,
        fixed: !site.relaxable,
        name: Some((site.name.clone(), DUMMY)),
    }
}

fn addr_to_ast(a: &Addr) -> AddrAst {
    match a {
        Addr::Imm(v) => AddrAst::Lit(IntLit::hex(*v), DUMMY),
        Addr::Reg(r) => AddrAst::Reg { reg: r.0, offset: None, span: DUMMY },
        Addr::RegOff(r, o) => AddrAst::Reg { reg: r.0, offset: Some(IntLit::hex(*o)), span: DUMMY },
    }
}

fn operand_to_ast(o: &Operand) -> OperandAst {
    match o {
        Operand::Reg(r) => OperandAst::Reg(r.0, DUMMY),
        Operand::Imm(v) => OperandAst::Lit(IntLit::dec(*v), DUMMY),
    }
}

fn test_to_ast(t: &Test) -> TestAst {
    TestAst {
        mask: t.mask.as_ref().map(operand_to_ast),
        cmp: t.cmp,
        rhs: operand_to_ast(&t.rhs),
    }
}

fn thread_to_stmts(program: &Program, thread: u32) -> Vec<Stmt> {
    let code = program.thread_code(thread);
    let mut targets: Vec<usize> = code
        .iter()
        .filter_map(|i| match i {
            Instr::Jmp { target } | Instr::JmpIf { target, .. } => Some(*target),
            _ => None,
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let label = |pc: usize| format!("L{pc}");
    let mut stmts = Vec::new();
    for (pc, instr) in code.iter().enumerate() {
        if targets.contains(&pc) {
            stmts.push(Stmt { kind: StmtKind::Label(label(pc), DUMMY), line: 0 });
        }
        let kind = match instr {
            Instr::Load { dst, addr, mode } => StmtKind::Assign {
                dst: (dst.0, DUMMY),
                rhs: RhsAst::Load { site: site_to_ast(program, *mode), addr: addr_to_ast(addr) },
            },
            Instr::Store { addr, src, mode } => StmtKind::Store {
                site: site_to_ast(program, *mode),
                addr: addr_to_ast(addr),
                src: operand_to_ast(src),
            },
            Instr::Rmw { dst, addr, op, operand, mode } => StmtKind::Assign {
                dst: (dst.0, DUMMY),
                rhs: RhsAst::Rmw {
                    op: *op,
                    site: site_to_ast(program, *mode),
                    addr: addr_to_ast(addr),
                    operand: operand_to_ast(operand),
                },
            },
            Instr::Cas { dst, addr, expected, new, mode } => StmtKind::Assign {
                dst: (dst.0, DUMMY),
                rhs: RhsAst::Cas {
                    site: site_to_ast(program, *mode),
                    addr: addr_to_ast(addr),
                    expected: operand_to_ast(expected),
                    new: operand_to_ast(new),
                },
            },
            Instr::Fence { mode } => StmtKind::Fence { site: site_to_ast(program, *mode) },
            Instr::AwaitLoad { dst, addr, until, mode } => StmtKind::Assign {
                dst: (dst.0, DUMMY),
                rhs: RhsAst::AwaitLoad {
                    site: site_to_ast(program, *mode),
                    addr: addr_to_ast(addr),
                    until: test_to_ast(until),
                },
            },
            Instr::AwaitRmw { dst, addr, until, op, operand, mode } => StmtKind::Assign {
                dst: (dst.0, DUMMY),
                rhs: RhsAst::AwaitRmw {
                    op: *op,
                    site: site_to_ast(program, *mode),
                    addr: addr_to_ast(addr),
                    operand: operand_to_ast(operand),
                    until: test_to_ast(until),
                },
            },
            Instr::AwaitCas { dst, addr, expected, new, mode } => StmtKind::Assign {
                dst: (dst.0, DUMMY),
                rhs: RhsAst::AwaitCas {
                    site: site_to_ast(program, *mode),
                    addr: addr_to_ast(addr),
                    expected: operand_to_ast(expected),
                    new: operand_to_ast(new),
                },
            },
            Instr::Mov { dst, src } => StmtKind::Assign {
                dst: (dst.0, DUMMY),
                rhs: RhsAst::Mov { src: operand_to_ast(src) },
            },
            Instr::Op { dst, op, a, b } => StmtKind::Assign {
                dst: (dst.0, DUMMY),
                rhs: RhsAst::Alu { op: *op, a: operand_to_ast(a), b: operand_to_ast(b) },
            },
            Instr::Jmp { target } => {
                StmtKind::Jmp { target: (label(*target), DUMMY), cond: None }
            }
            Instr::JmpIf { src, test, target } => StmtKind::Jmp {
                target: (label(*target), DUMMY),
                cond: Some((operand_to_ast(src), test_to_ast(test))),
            },
            Instr::Assert { src, test, msg } => StmtKind::Assert {
                src: operand_to_ast(src),
                test: test_to_ast(test),
                msg: Some(msg.clone()),
            },
            Instr::Nop => StmtKind::Nop,
        };
        stmts.push(Stmt { kind, line: 0 });
    }
    if targets.contains(&code.len()) {
        stmts.push(Stmt { kind: StmtKind::Label(label(code.len()), DUMMY), line: 0 });
    }
    stmts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;
    use vsync_graph::Mode;
    use vsync_lang::{ProgramBuilder, Reg};

    #[test]
    fn format_is_idempotent() {
        let src = r#"
            # Store buffering.
            litmus "sb"
            init { x = 0  y @ 0x20 = 0 }
            thread { store.rlx x, 1
              # read the other location
              r0 = load.rlx y }
            expect sc: verified = 3
            expect vmm: verified = 4
        "#;
        let once = format_source(src).unwrap();
        let twice = format_source(&once).unwrap();
        assert_eq!(once, twice, "formatting must be a fixpoint:\n{once}");
        assert!(once.contains("# Store buffering."));
        assert!(once.contains("# read the other location"));
        assert!(once.contains("y @ 0x20 = 0"));
    }

    #[test]
    fn print_round_trips_a_builder_program() {
        let mut pb = ProgramBuilder::new("handshake");
        pb.init(0x10, 0);
        pb.thread(|t| {
            t.store(0x10, 1u64, ("sig", Mode::Rel));
        });
        pb.thread(|t| {
            t.await_eq(Reg(0), 0x10, 1u64, Mode::Acq);
        });
        let p = pb.build().unwrap();
        let text = print_program(&p);
        let p2 = compile(&text).unwrap().program;
        assert_eq!(p, p2, "round-trip changed the program:\n{text}");
    }

    #[test]
    fn print_synthesizes_labels() {
        let mut pb = ProgramBuilder::new("loop");
        pb.thread(|t| {
            let top = t.here_label();
            let out = t.label();
            t.load(Reg(0), 0x10, Mode::Rlx);
            t.jmp_if(Reg(0), vsync_lang::Test::eq(1u64), out);
            t.jmp(top);
            t.bind(out);
        });
        let p = pb.build().unwrap();
        let text = print_program(&p);
        assert!(text.contains("L0:"), "{text}");
        assert!(text.contains("L3:"), "{text}");
        assert!(text.contains("jmp L3 if r0 == 1"), "{text}");
        let p2 = compile(&text).unwrap().program;
        assert_eq!(p, p2);
    }

    #[test]
    fn print_quotes_unprintable_site_names() {
        let mut pb = ProgramBuilder::new("2+2w");
        pb.thread(|t| {
            t.store(0x10, 1u64, Mode::Rlx);
        });
        let p = pb.build().unwrap();
        let text = print_program(&p);
        assert!(text.contains("store.rlx@\"2+2w.t0.s0\""), "{text}");
        let p2 = compile(&text).unwrap().program;
        assert_eq!(p, p2);
    }

    #[test]
    fn stale_declarations_survive_via_symmetry_section() {
        // Builder detects {0,1} symmetric; relaxing one site splits the
        // detected partition while the declaration stays coarse. The
        // printed file must carry the declaration explicitly.
        let mut pb = ProgramBuilder::new("sym");
        for _ in 0..2 {
            pb.thread(|t| {
                t.store(0x10, 1u64, Mode::Rel);
            });
        }
        let mut p = pb.build().unwrap();
        p.set_mode(vsync_lang::ModeRef(1), Mode::Rlx);
        let text = print_program(&p);
        assert!(text.contains("symmetry { 0 1 }"), "{text}");
        let p2 = compile(&text).unwrap().program;
        assert_eq!(p, p2);
    }
}
