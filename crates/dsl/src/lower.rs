//! Lowering: AST → [`vsync_lang::Program`] via [`ProgramBuilder`].
//!
//! All name resolution happens here — locations, labels, shared barrier
//! sites — with span-carrying diagnostics, so the builder (whose contract
//! violations are panics) is only ever fed pre-validated input.
//!
//! Thread templates (`thread[n] { ... }`) are lowered by instantiating
//! the same statement block `n` times. The instances' resolved code is
//! identical by construction, so [`ProgramBuilder::build`]'s template
//! detection merges them into one symmetry class and declares the
//! partition on the program — the lowering rule documented in
//! DESIGN.md §9.

use std::collections::{BTreeMap, BTreeSet};

use vsync_graph::{Loc, Mode, ThreadPartition};
use vsync_lang::{
    Addr, IntoSite, Operand, Program, ProgramBuilder, Reg, SiteKind, Test, ThreadBuilder,
};

use crate::ast::{
    AddrAst, Expectation, FinalCheckAst, Item, LocDecl, LocName, OperandAst, RhsAst, SiteAst,
    SourceFile, Stmt, StmtKind, TestAst,
};
use crate::diag::{Diagnostic, Span};
use crate::parser::parse;

/// Auto-assigned locations start here and step by this much.
const AUTO_LOC_BASE: Loc = 0x10;

/// Largest supported `thread[n]` template count (a safeguard — graphs
/// with more threads are far beyond exhaustive checking anyway).
const MAX_TEMPLATE_COUNT: u64 = 8;

/// A compiled litmus file: the program plus its annotations.
#[derive(Debug, Clone)]
pub struct LitmusTest {
    /// Program name (from the `litmus "name"` header).
    pub name: String,
    /// The lowered program.
    pub program: Program,
    /// Per-model expected verdicts, in annotation order.
    pub expectations: Vec<Expectation>,
    /// Did the file use a `thread[n]` template with `n >= 2`? (Such files
    /// are guaranteed a non-trivial declared symmetry partition.)
    pub templated: bool,
}

/// Parse and lower a litmus source file in one step.
///
/// # Errors
///
/// Returns the first syntax or resolution error with its source span.
pub fn compile(src: &str) -> Result<LitmusTest, Diagnostic> {
    lower(&parse(src)?)
}

/// Barrier-site specification used by lowering: named or auto, any
/// mode/fixedness combination (the builder's stock `IntoSite` impls cover
/// only the idiomatic corners).
#[derive(Debug, Clone)]
struct SiteSpec {
    name: Option<String>,
    mode: Mode,
    relaxable: bool,
}

impl IntoSite for SiteSpec {
    fn into_site(self) -> (Option<String>, Mode, bool) {
        (self.name, self.mode, self.relaxable)
    }
}

/// Lower a parsed file into a [`LitmusTest`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] for resolution errors: duplicate locations,
/// unbound or doubly-bound labels, inconsistent shared-site
/// registrations, invalid mode/kind combinations, malformed symmetry
/// declarations, duplicate expectations.
pub fn lower(file: &SourceFile) -> Result<LitmusTest, Diagnostic> {
    let locs = resolve_locations(file)?;
    validate_sites(file)?;
    let mut expectations: Vec<Expectation> = Vec::new();
    for item in &file.items {
        if let Item::Expect { model, model_span, verdict, executions, .. } = item {
            if expectations.iter().any(|e| e.model == *model) {
                return Err(file.diag(format!("duplicate expectation for model '{model}'"), *model_span));
            }
            expectations.push(Expectation { model: *model, verdict: *verdict, executions: *executions });
        }
    }

    let mut pb = ProgramBuilder::new(&file.name);
    for item in &file.items {
        if let Item::Init { decls, .. } = item {
            for d in decls {
                if let Some(init) = d.init {
                    let addr = match &d.name {
                        LocName::Named(n, _) => locs.addr[n],
                        LocName::Addr(a, _) => a.value,
                    };
                    pb.init(addr, init.value);
                }
            }
        }
    }
    let mut templated = false;
    for item in &file.items {
        if let Item::Thread { count, stmts, .. } = item {
            let (n, span) = match count {
                Some((n, span)) => (*n, Some(*span)),
                None => (1, None),
            };
            if n > MAX_TEMPLATE_COUNT {
                return Err(file.diag(
                    format!("thread template count {n} exceeds the supported maximum ({MAX_TEMPLATE_COUNT})"),
                    span.expect("count span present when count given"),
                ));
            }
            templated |= n >= 2;
            let labels = validate_labels(file, stmts)?;
            validate_awaits(file, stmts)?;
            for _ in 0..n {
                pb.thread(|t| emit_thread(t, stmts, &labels, &locs));
            }
        }
    }
    for item in &file.items {
        if let Item::Final { checks, .. } = item {
            for c in checks {
                emit_final_check(&mut pb, c, &locs);
            }
        }
    }
    let mut program = pb.build().map_err(|e| {
        // Unreachable by construction: every builder obligation was
        // pre-validated above. Surface it as a header-anchored error.
        file.diag(format!("internal lowering error: {e}"), file.name_span)
    })?;
    apply_symmetry(file, &mut program)?;
    Ok(LitmusTest { name: file.name.clone(), program, expectations, templated })
}

/// Resolved location table.
struct LocTable {
    addr: BTreeMap<String, Loc>,
}

/// Resolve every named location to an address: explicit `@` addresses
/// first, then auto-assignment (0x10, 0x20, ...) in declaration /
/// first-use order, skipping taken addresses.
fn resolve_locations(file: &SourceFile) -> Result<LocTable, Diagnostic> {
    let mut addr: BTreeMap<String, Loc> = BTreeMap::new();
    let mut taken: BTreeMap<Loc, String> = BTreeMap::new();
    let mut pending: Vec<String> = Vec::new();
    let mut seen_decl: BTreeMap<&str, Span> = BTreeMap::new();
    for item in &file.items {
        if let Item::Init { decls, .. } = item {
            for LocDecl { name, addr: explicit, .. } in decls {
                match name {
                    LocName::Named(n, span) => {
                        if seen_decl.insert(n, *span).is_some() {
                            return Err(file.diag(format!("location '{n}' declared twice"), *span));
                        }
                        match explicit {
                            Some(a) => {
                                if let Some(prev) = taken.insert(a.value, n.clone()) {
                                    return Err(file.diag(
                                        format!(
                                            "address {:#x} already assigned to location '{prev}'",
                                            a.value
                                        ),
                                        *span,
                                    ));
                                }
                                addr.insert(n.clone(), a.value);
                            }
                            None => pending.push(n.clone()),
                        }
                    }
                    LocName::Addr(a, span) => {
                        if let Some(prev) = taken.insert(a.value, format!("{a}")) {
                            return Err(file.diag(
                                format!("address {:#x} already assigned to location '{prev}'", a.value),
                                *span,
                            ));
                        }
                    }
                }
            }
        }
    }
    // Collect undeclared names in first-use order (code, then finals),
    // every raw literal address used there, and every offset each name
    // is addressed with — auto-assignment must never silently alias a
    // cell the file addresses explicitly, including `name + off` field
    // accesses whose offset reaches past the 0x10 auto stride.
    let mut pending_state =
        (pending, BTreeSet::<Loc>::new(), BTreeMap::<String, BTreeSet<Loc>>::new());
    {
        let (pending, reserved, offsets) = &mut pending_state;
        let note_name = |pending: &mut Vec<String>, name: &str| {
            if !addr.contains_key(name) && !pending.iter().any(|p| p == name) {
                pending.push(name.to_owned());
            }
        };
        let mut visit = |node: Node<'_>| match node {
            Node::Addr(AddrAst::Name { name, offset, .. }) => {
                note_name(pending, name);
                offsets.entry(name.clone()).or_default().insert(offset.map_or(0, |o| o.value));
            }
            Node::Operand(OperandAst::Name(name, _)) => note_name(pending, name),
            Node::Addr(AddrAst::Lit(lit, _)) => {
                reserved.insert(lit.value);
            }
            Node::Addr(AddrAst::Reg { .. }) | Node::Operand(_) => {}
        };
        for item in &file.items {
            match item {
                Item::Thread { stmts, .. } => {
                    for s in stmts {
                        visit_stmt_names(s, &mut visit);
                    }
                }
                Item::Final { checks, .. } => {
                    for c in checks {
                        visit(Node::Addr(&c.loc));
                        visit(Node::Operand(&c.test.rhs));
                        if let Some(m) = &c.test.mask {
                            visit(Node::Operand(m));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let (pending, mut reserved, offsets) = pending_state;
    let no_offsets = BTreeSet::new();
    // Cells reached through explicitly-addressed names are taken too.
    for (name, &base) in &addr {
        for &off in offsets.get(name).unwrap_or(&no_offsets) {
            reserved.insert(base + off);
        }
    }
    let mut next = AUTO_LOC_BASE;
    for name in pending {
        let offs = offsets.get(&name).unwrap_or(&no_offsets);
        let clashes = |base: Loc| {
            std::iter::once(0)
                .chain(offs.iter().copied())
                .any(|off| taken.contains_key(&(base + off)) || reserved.contains(&(base + off)))
        };
        while clashes(next) {
            next += AUTO_LOC_BASE;
        }
        for &off in offs {
            reserved.insert(next + off);
        }
        taken.insert(next, name.clone());
        addr.insert(name, next);
        next += AUTO_LOC_BASE;
    }
    Ok(LocTable { addr })
}

/// A visited node.
enum Node<'a> {
    Addr(&'a AddrAst),
    Operand(&'a OperandAst),
}

/// Walk every address and operand position of a statement, in source
/// order (used for deterministic auto-address assignment).
fn visit_stmt_names<'a>(s: &'a Stmt, f: &mut dyn FnMut(Node<'a>)) {
    let mut addr = |a: &'a AddrAst| f(Node::Addr(a));
    match &s.kind {
        StmtKind::Store { addr: a, src, .. } => {
            addr(a);
            f(Node::Operand(src));
        }
        StmtKind::Jmp { cond: Some((src, test)), .. } => {
            f(Node::Operand(src));
            visit_test(test, f);
        }
        StmtKind::Assert { src, test, .. } => {
            f(Node::Operand(src));
            visit_test(test, f);
        }
        StmtKind::Assign { rhs, .. } => match rhs {
            RhsAst::Load { addr: a, .. } => addr(a),
            RhsAst::Rmw { addr: a, operand, .. } => {
                addr(a);
                f(Node::Operand(operand));
            }
            RhsAst::Cas { addr: a, expected, new, .. }
            | RhsAst::AwaitCas { addr: a, expected, new, .. } => {
                addr(a);
                f(Node::Operand(expected));
                f(Node::Operand(new));
            }
            RhsAst::AwaitLoad { addr: a, until, .. } => {
                addr(a);
                visit_test(until, f);
            }
            RhsAst::AwaitRmw { addr: a, operand, until, .. } => {
                addr(a);
                f(Node::Operand(operand));
                visit_test(until, f);
            }
            RhsAst::Mov { src } => f(Node::Operand(src)),
            RhsAst::Alu { a, b, .. } => {
                f(Node::Operand(a));
                f(Node::Operand(b));
            }
        },
        StmtKind::Label(..) | StmtKind::Fence { .. } | StmtKind::Nop | StmtKind::Jmp { cond: None, .. } => {}
    }
}

fn visit_test<'a>(t: &'a TestAst, f: &mut dyn FnMut(Node<'a>)) {
    if let Some(m) = &t.mask {
        f(Node::Operand(m));
    }
    f(Node::Operand(&t.rhs));
}

/// The site kind a statement's annotation belongs to.
fn stmt_site_kinds(s: &Stmt) -> Option<(&SiteAst, SiteKind, &'static str)> {
    match &s.kind {
        StmtKind::Store { site, .. } => Some((site, SiteKind::Store, "store")),
        StmtKind::Fence { site } => Some((site, SiteKind::Fence, "fence")),
        StmtKind::Assign { rhs, .. } => match rhs {
            RhsAst::Load { site, .. } => Some((site, SiteKind::Load, "load")),
            RhsAst::AwaitLoad { site, .. } => Some((site, SiteKind::Load, "await-load")),
            RhsAst::Rmw { site, .. }
            | RhsAst::Cas { site, .. }
            | RhsAst::AwaitRmw { site, .. }
            | RhsAst::AwaitCas { site, .. } => Some((site, SiteKind::Rmw, "rmw")),
            RhsAst::Mov { .. } | RhsAst::Alu { .. } => None,
        },
        _ => None,
    }
}

/// Pre-validate every barrier-site annotation: mode/kind compatibility
/// and consistency of shared (named) registrations — the conditions the
/// builder would otherwise enforce by panicking.
fn validate_sites(file: &SourceFile) -> Result<(), Diagnostic> {
    let mut named: BTreeMap<&str, (SiteKind, Mode, bool)> = BTreeMap::new();
    for item in &file.items {
        let Item::Thread { stmts, .. } = item else { continue };
        for s in stmts {
            let Some((site, kind, what)) = stmt_site_kinds(s) else { continue };
            if !kind.valid_modes().contains(&site.mode) {
                return Err(file.diag(
                    format!("mode '{}' is invalid for a {what} site", site.mode),
                    site.mode_span,
                ));
            }
            if let Some((name, span)) = &site.name {
                match named.get(name.as_str()) {
                    None => {
                        named.insert(name, (kind, site.mode, site.fixed));
                    }
                    Some(&(k0, m0, f0)) => {
                        if k0 != kind {
                            return Err(file.diag(
                                format!("site '{name}' reuses a name with a different kind"),
                                *span,
                            ));
                        }
                        if m0 != site.mode {
                            return Err(file.diag(
                                format!(
                                    "site '{name}' reuses a name with a different mode ({m0} vs {})",
                                    site.mode
                                ),
                                *span,
                            ));
                        }
                        if f0 != site.fixed {
                            return Err(file.diag(
                                format!("site '{name}' is fixed ('!') in one place but not another"),
                                *span,
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Spanned mirror of `Program::validate`'s await-operand rule: an await
/// whose exit condition, RMW/CAS operand, or register-indirect address
/// reads a register that no statement in the thread assigns would compare
/// against a constant zero forever — reject it at the source level, with
/// the offending operand's span, instead of as an opaque builder error.
fn validate_awaits(file: &SourceFile, stmts: &[Stmt]) -> Result<(), Diagnostic> {
    let mut written = [false; 256];
    for s in stmts {
        if let StmtKind::Assign { dst: (d, _), .. } = &s.kind {
            written[*d as usize] = true;
        }
    }
    let check_op = |o: &OperandAst| match o {
        OperandAst::Reg(r, span) if !written[*r as usize] => Some((*r, *span)),
        _ => None,
    };
    let check_addr = |a: &AddrAst| match a {
        AddrAst::Reg { reg, span, .. } if !written[*reg as usize] => Some((*reg, *span)),
        _ => None,
    };
    let check_test = |t: &TestAst| t.mask.as_ref().and_then(check_op).or_else(|| check_op(&t.rhs));
    for s in stmts {
        let StmtKind::Assign { rhs, .. } = &s.kind else { continue };
        let bad = match rhs {
            RhsAst::AwaitLoad { addr, until, .. } => {
                check_addr(addr).or_else(|| check_test(until))
            }
            RhsAst::AwaitRmw { addr, operand, until, .. } => check_addr(addr)
                .or_else(|| check_op(operand))
                .or_else(|| check_test(until)),
            RhsAst::AwaitCas { addr, expected, new, .. } => check_addr(addr)
                .or_else(|| check_op(expected))
                .or_else(|| check_op(new)),
            _ => None,
        };
        if let Some((reg, span)) = bad {
            return Err(file.diag(
                format!("await reads register r{reg}, which no statement in this thread assigns"),
                span,
            ));
        }
    }
    Ok(())
}

/// Check label bindings and jump targets; returns the name → index map.
fn validate_labels(file: &SourceFile, stmts: &[Stmt]) -> Result<BTreeMap<String, usize>, Diagnostic> {
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    for s in stmts {
        if let StmtKind::Label(name, span) = &s.kind {
            let next = labels.len();
            if labels.insert(name.clone(), next).is_some() {
                return Err(file.diag(format!("label '{name}' bound twice"), *span));
            }
        }
    }
    for s in stmts {
        if let StmtKind::Jmp { target: (name, span), .. } = &s.kind {
            if !labels.contains_key(name) {
                return Err(file.diag(format!("unbound label '{name}'"), *span));
            }
        }
    }
    Ok(labels)
}

fn lower_site(site: &SiteAst) -> SiteSpec {
    SiteSpec {
        name: site.name.as_ref().map(|(n, _)| n.clone()),
        mode: site.mode,
        relaxable: !site.fixed,
    }
}

fn lower_addr(a: &AddrAst, locs: &LocTable) -> Addr {
    match a {
        AddrAst::Name { name, offset, .. } => {
            Addr::Imm(locs.addr[name] + offset.map_or(0, |o| o.value))
        }
        AddrAst::Lit(lit, _) => Addr::Imm(lit.value),
        AddrAst::Reg { reg, offset: None, .. } => Addr::Reg(Reg(*reg)),
        AddrAst::Reg { reg, offset: Some(o), .. } => Addr::RegOff(Reg(*reg), o.value),
    }
}

fn lower_operand(o: &OperandAst, locs: &LocTable) -> Operand {
    match o {
        OperandAst::Reg(r, _) => Operand::Reg(Reg(*r)),
        OperandAst::Lit(lit, _) => Operand::Imm(lit.value),
        OperandAst::Name(n, _) => Operand::Imm(locs.addr[n]),
    }
}

fn lower_test(t: &TestAst, locs: &LocTable) -> Test {
    Test {
        mask: t.mask.as_ref().map(|m| lower_operand(m, locs)),
        cmp: t.cmp,
        rhs: lower_operand(&t.rhs, locs),
    }
}

/// Emit one (pre-validated) thread body into the builder.
fn emit_thread(
    t: &mut ThreadBuilder,
    stmts: &[Stmt],
    labels: &BTreeMap<String, usize>,
    locs: &LocTable,
) {
    let handles: Vec<vsync_lang::Label> = (0..labels.len()).map(|_| t.label()).collect();
    let handle = |name: &str| handles[labels[name]];
    for s in stmts {
        match &s.kind {
            StmtKind::Label(name, _) => {
                t.bind(handle(name));
            }
            StmtKind::Store { site, addr, src } => {
                t.store(lower_addr(addr, locs), lower_operand(src, locs), lower_site(site));
            }
            StmtKind::Fence { site } => {
                t.fence(lower_site(site));
            }
            StmtKind::Jmp { target: (name, _), cond } => match cond {
                None => {
                    t.jmp(handle(name));
                }
                Some((src, test)) => {
                    t.jmp_if(lower_operand(src, locs), lower_test(test, locs), handle(name));
                }
            },
            StmtKind::Assert { src, test, msg } => {
                t.assert(lower_operand(src, locs), lower_test(test, locs), msg.as_deref().unwrap_or(""));
            }
            StmtKind::Nop => {
                t.nop();
            }
            StmtKind::Assign { dst: (dst, _), rhs } => {
                let dst = Reg(*dst);
                match rhs {
                    RhsAst::Load { site, addr } => {
                        t.load(dst, lower_addr(addr, locs), lower_site(site));
                    }
                    RhsAst::Rmw { op, site, addr, operand } => {
                        t.rmw(dst, lower_addr(addr, locs), *op, lower_operand(operand, locs), lower_site(site));
                    }
                    RhsAst::Cas { site, addr, expected, new } => {
                        t.cas(
                            dst,
                            lower_addr(addr, locs),
                            lower_operand(expected, locs),
                            lower_operand(new, locs),
                            lower_site(site),
                        );
                    }
                    RhsAst::AwaitLoad { site, addr, until } => {
                        t.await_load(dst, lower_addr(addr, locs), lower_test(until, locs), lower_site(site));
                    }
                    RhsAst::AwaitRmw { op, site, addr, operand, until } => {
                        t.await_rmw(
                            dst,
                            lower_addr(addr, locs),
                            lower_test(until, locs),
                            *op,
                            lower_operand(operand, locs),
                            lower_site(site),
                        );
                    }
                    RhsAst::AwaitCas { site, addr, expected, new } => {
                        t.await_cas(
                            dst,
                            lower_addr(addr, locs),
                            lower_operand(expected, locs),
                            lower_operand(new, locs),
                            lower_site(site),
                        );
                    }
                    RhsAst::Mov { src } => {
                        t.mov(dst, lower_operand(src, locs));
                    }
                    RhsAst::Alu { op, a, b } => {
                        t.op(dst, *op, lower_operand(a, locs), lower_operand(b, locs));
                    }
                }
            }
        }
    }
}

fn emit_final_check(pb: &mut ProgramBuilder, c: &FinalCheckAst, locs: &LocTable) {
    let loc = match &c.loc {
        AddrAst::Name { name, offset, .. } => locs.addr[name] + offset.map_or(0, |o| o.value),
        AddrAst::Lit(lit, _) => lit.value,
        AddrAst::Reg { .. } => unreachable!("parser rejects register final checks"),
    };
    pb.final_check(loc, lower_test(&c.test, locs), c.msg.as_deref().unwrap_or(""));
}

/// Apply an explicit `symmetry { ... } { ... }` declaration, if present.
fn apply_symmetry(file: &SourceFile, program: &mut Program) -> Result<(), Diagnostic> {
    let mut seen = false;
    for item in &file.items {
        let Item::Symmetry { groups, line } = item else { continue };
        let span = Span::new(*line, 1, "symmetry".len() as u32);
        if seen {
            return Err(file.diag("duplicate symmetry section", span));
        }
        seen = true;
        let n = program.num_threads();
        let mut class = vec![u32::MAX; n];
        for (gi, group) in groups.iter().enumerate() {
            for (idx, ispan) in group {
                let idx = *idx as usize;
                if idx >= n {
                    return Err(file.diag(
                        format!("thread index {idx} out of range (the program has {n} threads)"),
                        *ispan,
                    ));
                }
                if class[idx] != u32::MAX {
                    return Err(
                        file.diag(format!("thread {idx} appears in two symmetry groups"), *ispan)
                    );
                }
                class[idx] = gi as u32;
            }
        }
        if let Some(missing) = class.iter().position(|&c| c == u32::MAX) {
            return Err(file.diag(
                format!("symmetry partition must mention every thread (thread {missing} is missing)"),
                span,
            ));
        }
        program.declare_symmetry(ThreadPartition::from_class_ids(&class));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_lang::Instr;

    #[test]
    fn lowers_auto_and_explicit_locations() {
        let t = compile(
            r#"
            litmus "locs"
            init { a @ 0x20 = 7  b = 1 }
            thread { r0 = load.rlx a  r1 = load.rlx b  r2 = load.rlx c }
            "#,
        )
        .unwrap();
        // a explicit at 0x20; b auto-assigned 0x10 (0x20 taken); c next at 0x30.
        assert_eq!(t.program.init().get(&0x20), Some(&7));
        assert_eq!(t.program.init().get(&0x10), Some(&1));
        let code = t.program.thread_code(0);
        assert!(matches!(code[0], Instr::Load { addr: Addr::Imm(0x20), .. }));
        assert!(matches!(code[1], Instr::Load { addr: Addr::Imm(0x10), .. }));
        assert!(matches!(code[2], Instr::Load { addr: Addr::Imm(0x30), .. }));
    }

    #[test]
    fn auto_assignment_avoids_literal_addresses() {
        // `x` must not be auto-assigned 0x10: the code addresses that
        // cell explicitly as a raw literal.
        let t = compile(
            r#"
            litmus "alias"
            thread { store.rlx x, 1  r0 = load.rlx 0x10 }
            final { 0x20 == 0 : "literal finals reserve too" }
            "#,
        )
        .unwrap();
        let code = t.program.thread_code(0);
        assert!(
            matches!(code[0], Instr::Store { addr: Addr::Imm(0x30), .. }),
            "x collided with a literal address: {code:?}"
        );
    }

    #[test]
    fn auto_assignment_avoids_offset_reach() {
        // `x + 0x10` reaches one auto stride past x, so `y` must skip
        // the cell x's field access lands on — and x itself must skip
        // cells reached through the explicitly-addressed node's fields.
        let t = compile(
            r#"
            litmus "fields"
            init { node @ 0x20 = 0 }
            thread {
              store.rlx x + 0x10, 1
              store.rlx node + 0x10, 2
              r0 = load.rlx y
            }
            "#,
        )
        .unwrap();
        let code = t.program.thread_code(0);
        // node@0x20 reserves 0x30 via its +0x10 use; x would auto-get
        // 0x10 but its +0x10 field (0x20) clashes with node and 0x30 is
        // reserved, so x lands at 0x40 (field at 0x50); y continues past
        // the reserved field cell to 0x60.
        assert!(matches!(code[0], Instr::Store { addr: Addr::Imm(0x50), .. }), "{code:?}");
        assert!(matches!(code[1], Instr::Store { addr: Addr::Imm(0x30), .. }), "{code:?}");
        assert!(matches!(code[2], Instr::Load { addr: Addr::Imm(0x60), .. }), "{code:?}");
    }

    #[test]
    fn templates_declare_symmetry() {
        let t = compile(
            r#"
            litmus "fai"
            thread[3] { r0 = rmw.add.rlx x, 1 }
            "#,
        )
        .unwrap();
        assert!(t.templated);
        assert_eq!(t.program.num_threads(), 3);
        let declared = t.program.declared_symmetry().expect("builder declares");
        assert!(declared.same_class(0, 2));
    }

    #[test]
    fn named_sites_are_shared_and_fixed_sites_pinned() {
        let t = compile(
            r#"
            litmus "sites"
            thread[2] {
              store.rel@handover x, 1
              store.rlx! y, 1
            }
            "#,
        )
        .unwrap();
        let sites = t.program.sites();
        assert_eq!(sites.iter().filter(|s| s.name == "handover").count(), 1);
        assert_eq!(sites.iter().filter(|s| !s.relaxable).count(), 2);
    }

    #[test]
    fn labels_and_jumps_resolve() {
        let t = compile(
            r#"
            litmus "loop"
            thread {
            top:
              r0 = load.rlx x
              jmp top if r0 == 0
              jmp out
            out:
            }
            "#,
        )
        .unwrap();
        let code = t.program.thread_code(0);
        assert!(matches!(code[1], Instr::JmpIf { target: 0, .. }));
        assert!(matches!(code[2], Instr::Jmp { target: 3 }));
    }

    #[test]
    fn location_name_as_operand_resolves_to_address() {
        let t = compile(
            r#"
            litmus "ptr"
            init { node @ 0x1000 = 0  tail @ 0x100 = 0 }
            thread { store.rlx tail, node }
            "#,
        )
        .unwrap();
        assert!(matches!(
            t.program.thread_code(0)[0],
            Instr::Store { src: Operand::Imm(0x1000), .. }
        ));
    }

    #[test]
    fn rejects_unbound_label() {
        let e = compile("litmus x thread { jmp out }").unwrap_err();
        assert!(e.message.contains("unbound label 'out'"), "{e}");
    }

    #[test]
    fn rejects_duplicate_location() {
        let e = compile("litmus x init { a = 0  a = 1 }").unwrap_err();
        assert!(e.message.contains("declared twice"), "{e}");
    }

    #[test]
    fn rejects_inconsistent_shared_site() {
        let e = compile(
            "litmus x thread { store.rel@s y, 1 } thread { store.rlx@s y, 1 }",
        )
        .unwrap_err();
        assert!(e.message.contains("different mode"), "{e}");
    }

    #[test]
    fn rejects_invalid_mode_for_kind() {
        let e = compile("litmus x thread { store.acq y, 1 }").unwrap_err();
        assert!(e.message.contains("invalid for a store site"), "{e}");
    }

    #[test]
    fn explicit_symmetry_section_is_declared() {
        let t = compile(
            r#"
            litmus "sym"
            thread { store.rlx x, 1 }
            thread { store.rlx x, 1 }
            symmetry { 0 } { 1 }
            "#,
        )
        .unwrap();
        // Detected partition merges the threads; the declaration splits.
        assert!(t.program.symmetry_partition().is_trivial());
        let e = compile("litmus x thread { nop } thread { nop } symmetry { 0 }").unwrap_err();
        assert!(e.message.contains("thread 1 is missing"), "{e}");
        let e = compile("litmus x thread { nop } symmetry { 0 0 }").unwrap_err();
        assert!(e.message.contains("two symmetry groups"), "{e}");
    }

    #[test]
    fn rejects_await_reading_unassigned_register() {
        let e = compile("litmus x thread { r0 = await_eq.acq flag, r5 }").unwrap_err();
        assert!(e.message.contains("register r5"), "{e}");
        assert!(e.message.contains("assigns"), "{e}");
        // Assigning the register anywhere in the thread is enough.
        compile("litmus x thread { r5 = mov 1  r0 = await_eq.acq flag, r5 }").unwrap();
        // The rule applies to masks, RMW operands and CAS operands too.
        let e = compile("litmus x thread { r0 = await_load.acq w until & r9 == 0 }").unwrap_err();
        assert!(e.message.contains("register r9"), "{e}");
        let e = compile("litmus x thread { r0 = await_cas.acq l, r3, 1 }").unwrap_err();
        assert!(e.message.contains("register r3"), "{e}");
    }

    #[test]
    fn rejects_duplicate_expectation() {
        let e = compile("litmus x thread { nop } expect vmm: verified expect vmm: safety").unwrap_err();
        assert!(e.message.contains("duplicate expectation"), "{e}");
    }
}
