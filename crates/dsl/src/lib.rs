//! # vsync-dsl
//!
//! A textual, herd/litmus-style frontend for the modeling language: the
//! push-button pipeline's answer to "feed the tool a new scenario without
//! recompiling". A `.litmus` file names a program, declares locations and
//! initial values, gives per-thread code (with labels, awaits and
//! explicit barrier-mode annotations like `load.acq` or `store.rlx@site`),
//! states final-memory checks, and annotates the verdict each memory
//! model is expected to produce:
//!
//! ```text
//! litmus "mp"
//!
//! init {
//!   data = 0
//!   flag = 0
//! }
//!
//! thread {
//!   store.rlx data, 1
//!   store.rel flag, 1
//! }
//!
//! thread {
//!   r0 = await_eq.acq flag, 1
//!   r1 = load.rlx data
//!   assert r1 == 1, "flag implies data"
//! }
//!
//! expect sc: verified
//! expect tso: verified
//! expect vmm: verified
//! ```
//!
//! Thread templates (`thread[3] { ... }`) instantiate one block several
//! times; the identical instances land in one declared symmetry class,
//! which the explorer uses to prune relabeled twin executions.
//!
//! The crate is a hand-rolled lexer + recursive-descent parser
//! ([`parse`]), a lowering pass onto [`vsync_lang::ProgramBuilder`]
//! ([`compile`]), and a pretty-printer ([`format_source`] for canonical
//! formatting, [`print_program`] for emitting DSL text from an in-memory
//! [`vsync_lang::Program`] such that `parse ∘ print` reproduces the
//! program structurally). Errors are span-carrying [`Diagnostic`]s with
//! rustc-style source excerpts.
//!
//! ```
//! let test = vsync_dsl::compile(
//!     "litmus \"fai\"\nthread[2] { r0 = rmw.add.rlx x, 1 }\nexpect vmm: verified = 1",
//! ).expect("well-formed");
//! assert_eq!(test.program.num_threads(), 2);
//! assert!(test.templated);
//! let text = vsync_dsl::print_test(&test);
//! assert_eq!(vsync_dsl::compile(&text).unwrap().program, test.program);
//! ```

#![warn(missing_docs)]

pub mod ast;
mod diag;
mod lexer;
mod lower;
mod parser;
mod printer;

pub use ast::{ExpectedVerdict, Expectation, SourceFile};
pub use diag::{Diagnostic, Span};
pub use lower::{compile, lower, LitmusTest};
pub use parser::parse;
pub use printer::{format_file, format_source, print_program, print_test, program_to_ast};
