//! Recursive-descent parser for the litmus DSL.
//!
//! The grammar (DESIGN.md §9 has the full EBNF) is self-delimiting, so
//! newlines are insignificant and no statement separators are needed.
//! The parser only checks syntax; name resolution (locations, labels,
//! shared sites) happens in [`crate::lower`].

use vsync_graph::Mode;
use vsync_lang::{AluOp, Cmp, RmwOp, NUM_REGS};
use vsync_model::ModelKind;

use crate::ast::{
    AddrAst, ExpectedVerdict, FinalCheckAst, IntLit, Item, LocDecl, LocName, OperandAst, RhsAst,
    SiteAst, SourceFile, Stmt, StmtKind, TestAst,
};
use crate::diag::{Diagnostic, Span};
use crate::lexer::{lex, Lexed, Tok, Token};

/// Parse a litmus source file into its AST.
///
/// # Errors
///
/// Returns the first syntax error, with a `line:col` span and source
/// excerpt.
pub fn parse(src: &str) -> Result<SourceFile, Diagnostic> {
    let lexed = lex(src)?;
    Parser { lexed, pos: 0 }.file()
}

struct Parser {
    lexed: Lexed,
    pos: usize,
}

/// Does an identifier name a register (`r0`..`r31` shape: `r` + digits)?
fn reg_of(ident: &str) -> Option<u64> {
    let digits = ident.strip_prefix('r')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.lexed.tokens[self.pos]
    }

    fn peek2(&self) -> &Tok {
        &self.lexed.tokens[(self.pos + 1).min(self.lexed.tokens.len() - 1)].tok
    }

    fn bump(&mut self) -> Token {
        let t = self.lexed.tokens[self.pos].clone();
        if self.pos + 1 < self.lexed.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if &self.peek().tok == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn diag(&self, message: impl Into<String>, span: Span) -> Diagnostic {
        self.lexed.diag(message, span)
    }

    fn diag_here(&self, message: impl Into<String>) -> Diagnostic {
        self.diag(message, self.peek().span)
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<Token, Diagnostic> {
        if self.peek().tok == tok {
            Ok(self.bump())
        } else {
            Err(self.diag_here(format!("expected {what}, found {}", self.peek().tok.describe())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                let span = self.bump().span;
                Ok((s, span))
            }
            other => Err(self.diag_here(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<(IntLit, Span), Diagnostic> {
        match self.peek().tok {
            Tok::Int { value, hex } => {
                let span = self.bump().span;
                Ok((IntLit { value, hex }, span))
            }
            ref other => Err(self.diag_here(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match &self.peek().tok {
            Tok::Str(s) => {
                let s = s.clone();
                let span = self.bump().span;
                Ok((s, span))
            }
            other => Err(self.diag_here(format!("expected {what}, found {}", other.describe()))),
        }
    }

    // ---- file & items ------------------------------------------------

    fn file(mut self) -> Result<SourceFile, Diagnostic> {
        let kw = self.expect_ident("the 'litmus \"name\"' header")?;
        if kw.0 != "litmus" {
            return Err(self.diag(format!("expected the 'litmus \"name\"' header, found '{}'", kw.0), kw.1));
        }
        let header_line = kw.1.line;
        let (name, name_span) = match &self.peek().tok {
            Tok::Str(_) => self.expect_string("the program name")?,
            Tok::Ident(_) => self.expect_ident("the program name")?,
            other => {
                return Err(self.diag_here(format!(
                    "expected the program name (a string or identifier), found {}",
                    other.describe()
                )))
            }
        };
        let mut items = Vec::new();
        loop {
            match &self.peek().tok {
                Tok::Eof => break,
                Tok::Ident(kw) => {
                    let kw = kw.clone();
                    match kw.as_str() {
                        "init" => items.push(self.init_item()?),
                        "thread" => items.push(self.thread_item()?),
                        "final" => items.push(self.final_item()?),
                        "expect" => items.push(self.expect_item()?),
                        "symmetry" => items.push(self.symmetry_item()?),
                        other => {
                            return Err(self.diag_here(format!(
                                "expected a section (init, thread, final, expect, symmetry), found '{other}'"
                            )))
                        }
                    }
                }
                other => {
                    return Err(self.diag_here(format!(
                        "expected a section (init, thread, final, expect, symmetry), found {}",
                        other.describe()
                    )))
                }
            }
        }
        let Lexed { comments, lines, .. } = self.lexed;
        Ok(SourceFile { name, name_span, items, header_line, comments, lines })
    }

    fn init_item(&mut self) -> Result<Item, Diagnostic> {
        let line = self.bump().span.line; // `init`
        self.expect(Tok::LBrace, "'{'")?;
        let mut decls = Vec::new();
        while !self.eat(&Tok::RBrace) {
            decls.push(self.loc_decl()?);
        }
        Ok(Item::Init { decls, line })
    }

    fn loc_decl(&mut self) -> Result<LocDecl, Diagnostic> {
        match &self.peek().tok {
            Tok::Ident(_) => {
                let (name, span) = self.expect_ident("a location name")?;
                if let Some(r) = reg_of(&name) {
                    return Err(self.diag(
                        format!("'r{r}' is reserved for registers and cannot name a location"),
                        span,
                    ));
                }
                let line = span.line;
                let addr = if self.eat(&Tok::At) {
                    Some(self.expect_int("an address")?.0)
                } else {
                    None
                };
                let init = if self.eat(&Tok::Eq) {
                    Some(self.expect_int("an initial value")?.0)
                } else {
                    None
                };
                if addr.is_none() && init.is_none() {
                    return Err(self.diag(
                        format!("location '{name}' declares neither an address ('@') nor a value ('=')"),
                        span,
                    ));
                }
                Ok(LocDecl { name: LocName::Named(name, span), addr, init, line })
            }
            Tok::Int { .. } => {
                let (lit, span) = self.expect_int("an address")?;
                self.expect(Tok::Eq, "'='")?;
                let (val, _) = self.expect_int("an initial value")?;
                Ok(LocDecl { name: LocName::Addr(lit, span), addr: None, init: Some(val), line: span.line })
            }
            other => Err(self.diag_here(format!(
                "expected a location declaration, found {}",
                other.describe()
            ))),
        }
    }

    fn thread_item(&mut self) -> Result<Item, Diagnostic> {
        let line = self.bump().span.line; // `thread`
        let count = if self.eat(&Tok::LBracket) {
            let (lit, span) = self.expect_int("a thread count")?;
            self.expect(Tok::RBracket, "']'")?;
            if lit.value == 0 {
                return Err(self.diag("a thread template needs at least one instance", span));
            }
            Some((lit.value, span))
        } else {
            None
        };
        self.expect(Tok::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Item::Thread { count, stmts, line })
    }

    fn final_item(&mut self) -> Result<Item, Diagnostic> {
        let line = self.bump().span.line; // `final`
        self.expect(Tok::LBrace, "'{'")?;
        let mut checks = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let check_line = self.peek().span.line;
            let loc = self.addr("a checked location")?;
            if let AddrAst::Reg { span, .. } = loc {
                return Err(self.diag("final-state checks apply to memory locations, not registers", span));
            }
            let test = self.test()?;
            // Final checks are evaluated on the final *memory* state alone —
            // thread registers are gone — so the comparison operands must be
            // immediates. Rejecting registers here gives a span; lowering has
            // no better one.
            if let OperandAst::Reg(_, span) = test.rhs {
                return Err(self.diag(
                    "final-state checks compare memory against immediates; \
                     registers have no value in the final state",
                    span,
                ));
            }
            if let Some(OperandAst::Reg(_, span)) = test.mask {
                return Err(self.diag(
                    "final-state check masks must be immediates; \
                     registers have no value in the final state",
                    span,
                ));
            }
            let msg = if self.eat(&Tok::Colon) {
                Some(self.expect_string("the failure message")?.0)
            } else {
                None
            };
            checks.push(FinalCheckAst { loc, test, msg, line: check_line });
        }
        Ok(Item::Final { checks, line })
    }

    fn expect_item(&mut self) -> Result<Item, Diagnostic> {
        let line = self.bump().span.line; // `expect`
        let (model_name, model_span) = self.expect_ident("a memory model (sc, tso, vmm)")?;
        let model: ModelKind = model_name
            .parse()
            .map_err(|_| self.diag(format!("unknown memory model '{model_name}' (sc, tso, vmm)"), model_span))?;
        self.expect(Tok::Colon, "':'")?;
        let (verdict_name, verdict_span) =
            self.expect_ident("an expected verdict (verified, safety, await-termination, fault)")?;
        let verdict = ExpectedVerdict::from_name(&verdict_name).ok_or_else(|| {
            self.diag(
                format!(
                    "unknown expected verdict '{verdict_name}' (verified, safety, await-termination, fault)"
                ),
                verdict_span,
            )
        })?;
        let executions = if self.eat(&Tok::Eq) {
            let (lit, span) = self.expect_int("an execution count")?;
            if verdict != ExpectedVerdict::Verified {
                return Err(self.diag(
                    format!("execution counts only apply to 'verified' expectations, not '{verdict}'"),
                    span,
                ));
            }
            Some(lit.value)
        } else {
            None
        };
        Ok(Item::Expect { model, model_span, verdict, executions, line })
    }

    fn symmetry_item(&mut self) -> Result<Item, Diagnostic> {
        let line = self.bump().span.line; // `symmetry`
        let mut groups = Vec::new();
        while self.eat(&Tok::LBrace) {
            let mut group = Vec::new();
            while !self.eat(&Tok::RBrace) {
                let (lit, span) = self.expect_int("a thread index")?;
                group.push((lit.value, span));
            }
            groups.push(group);
        }
        if groups.is_empty() {
            return Err(self.diag_here("'symmetry' needs at least one '{ ... }' thread group"));
        }
        Ok(Item::Symmetry { groups, line })
    }

    // ---- statements --------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let line = self.peek().span.line;
        let kind = match &self.peek().tok {
            Tok::Ident(id) => {
                let id = id.clone();
                if *self.peek2() == Tok::Colon {
                    let (name, span) = self.expect_ident("a label")?;
                    self.bump(); // ':'
                    StmtKind::Label(name, span)
                } else if let Some(r) = reg_of(&id) {
                    let span = self.bump().span;
                    let dst = self.check_reg(r, span)?;
                    self.expect(Tok::Eq, "'='")?;
                    StmtKind::Assign { dst: (dst, span), rhs: self.rhs()? }
                } else {
                    match id.as_str() {
                        "store" => {
                            self.bump();
                            let site = self.site()?;
                            let addr = self.addr("a store address")?;
                            self.expect(Tok::Comma, "','")?;
                            let src = self.operand("the stored value")?;
                            StmtKind::Store { site, addr, src }
                        }
                        "fence" => {
                            self.bump();
                            StmtKind::Fence { site: self.site()? }
                        }
                        "jmp" => {
                            self.bump();
                            let target = self.expect_ident("a label")?;
                            let cond = if matches!(&self.peek().tok, Tok::Ident(k) if k == "if") {
                                self.bump();
                                let src = self.operand("the tested operand")?;
                                let test = self.test()?;
                                Some((src, test))
                            } else {
                                None
                            };
                            StmtKind::Jmp { target, cond }
                        }
                        "assert" => {
                            self.bump();
                            let src = self.operand("the asserted operand")?;
                            let test = self.test()?;
                            let msg = if self.eat(&Tok::Comma) {
                                Some(self.expect_string("the assertion message")?.0)
                            } else {
                                None
                            };
                            StmtKind::Assert { src, test, msg }
                        }
                        "nop" => {
                            self.bump();
                            StmtKind::Nop
                        }
                        other => {
                            return Err(self.diag_here(format!(
                                "expected a statement, found '{other}' \
                                 (statements: rN = ..., store, fence, jmp, assert, nop, label:)"
                            )))
                        }
                    }
                }
            }
            other => {
                return Err(self.diag_here(format!(
                    "expected a statement, found {}",
                    other.describe()
                )))
            }
        };
        Ok(Stmt { kind, line })
    }

    fn rhs(&mut self) -> Result<RhsAst, Diagnostic> {
        let (op, span) = self.expect_ident("an operation (load, rmw, cas, await_load, mov, ...)")?;
        Ok(match op.as_str() {
            "load" => {
                let site = self.site()?;
                RhsAst::Load { site, addr: self.addr("a load address")? }
            }
            "rmw" | "await_rmw" => {
                self.expect(Tok::Dot, "'.' and an rmw operation")?;
                let (name, name_span) = self.expect_ident("an rmw operation")?;
                let rmw = rmw_of(&name).ok_or_else(|| {
                    self.diag(
                        format!("unknown rmw operation '{name}' (xchg, add, sub, or, and, xor)"),
                        name_span,
                    )
                })?;
                let site = self.site()?;
                let addr = self.addr("an rmw address")?;
                self.expect(Tok::Comma, "','")?;
                let operand = self.operand("the rmw operand")?;
                if op == "rmw" {
                    RhsAst::Rmw { op: rmw, site, addr, operand }
                } else {
                    self.until_kw()?;
                    RhsAst::AwaitRmw { op: rmw, site, addr, operand, until: self.test()? }
                }
            }
            "cas" | "await_cas" => {
                let site = self.site()?;
                let addr = self.addr("a cas address")?;
                self.expect(Tok::Comma, "','")?;
                let expected = self.operand("the expected value")?;
                self.expect(Tok::Comma, "','")?;
                let new = self.operand("the new value")?;
                if op == "cas" {
                    RhsAst::Cas { site, addr, expected, new }
                } else {
                    RhsAst::AwaitCas { site, addr, expected, new }
                }
            }
            "await_load" => {
                let site = self.site()?;
                let addr = self.addr("a polled address")?;
                self.until_kw()?;
                RhsAst::AwaitLoad { site, addr, until: self.test()? }
            }
            // Sugar: `await_eq a, v` / `await_neq a, v` are canonical
            // `await_load ... until == v` / `... until != v`.
            "await_eq" | "await_neq" => {
                let site = self.site()?;
                let addr = self.addr("a polled address")?;
                self.expect(Tok::Comma, "','")?;
                let rhs = self.operand("the awaited value")?;
                let cmp = if op == "await_eq" { Cmp::Eq } else { Cmp::Ne };
                RhsAst::AwaitLoad { site, addr, until: TestAst { mask: None, cmp, rhs } }
            }
            "mov" => RhsAst::Mov { src: self.operand("the source operand")? },
            alu if alu_of(alu).is_some() => {
                let a = self.operand("the left operand")?;
                self.expect(Tok::Comma, "','")?;
                let b = self.operand("the right operand")?;
                RhsAst::Alu { op: alu_of(alu).unwrap(), a, b }
            }
            other => {
                return Err(self.diag(
                    format!(
                        "unknown operation '{other}' (load, rmw.<op>, cas, await_load, await_eq, \
                         await_neq, await_rmw.<op>, await_cas, mov, add, sub, and, or, xor, shl, shr)"
                    ),
                    span,
                ))
            }
        })
    }

    fn until_kw(&mut self) -> Result<(), Diagnostic> {
        match &self.peek().tok {
            Tok::Ident(k) if k == "until" => {
                self.bump();
                Ok(())
            }
            other => Err(self.diag_here(format!("expected 'until', found {}", other.describe()))),
        }
    }

    // ---- operands, addresses, tests, sites ---------------------------

    fn check_reg(&self, r: u64, span: Span) -> Result<u8, Diagnostic> {
        if (r as usize) < NUM_REGS {
            Ok(r as u8)
        } else {
            Err(self.diag(format!("register 'r{r}' out of range (r0..r{})", NUM_REGS - 1), span))
        }
    }

    fn operand(&mut self, what: &str) -> Result<OperandAst, Diagnostic> {
        match &self.peek().tok {
            Tok::Ident(id) => {
                let id = id.clone();
                let span = self.bump().span;
                match reg_of(&id) {
                    Some(r) => Ok(OperandAst::Reg(self.check_reg(r, span)?, span)),
                    None => Ok(OperandAst::Name(id, span)),
                }
            }
            Tok::Int { .. } => {
                let (lit, span) = self.expect_int(what)?;
                Ok(OperandAst::Lit(lit, span))
            }
            other => Err(self.diag_here(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn addr(&mut self, what: &str) -> Result<AddrAst, Diagnostic> {
        match &self.peek().tok {
            Tok::Ident(id) => {
                let id = id.clone();
                let span = self.bump().span;
                if let Some(r) = reg_of(&id) {
                    return Err(self.diag(
                        format!("register-indirect addresses use brackets: [r{r}] or [r{r} + off]"),
                        span,
                    ));
                }
                let offset =
                    if self.eat(&Tok::Plus) { Some(self.expect_int("an offset")?.0) } else { None };
                Ok(AddrAst::Name { name: id, offset, span })
            }
            Tok::Int { .. } => {
                let (lit, span) = self.expect_int(what)?;
                Ok(AddrAst::Lit(lit, span))
            }
            Tok::LBracket => {
                self.bump();
                let (id, span) = self.expect_ident("a register")?;
                let r = reg_of(&id)
                    .ok_or_else(|| self.diag(format!("expected a register, found '{id}'"), span))?;
                let reg = self.check_reg(r, span)?;
                let offset =
                    if self.eat(&Tok::Plus) { Some(self.expect_int("an offset")?.0) } else { None };
                self.expect(Tok::RBracket, "']'")?;
                Ok(AddrAst::Reg { reg, offset, span })
            }
            other => Err(self.diag_here(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn test(&mut self) -> Result<TestAst, Diagnostic> {
        let mask = if self.eat(&Tok::Amp) { Some(self.operand("the mask")?) } else { None };
        let cmp = match self.peek().tok {
            Tok::EqEq => Cmp::Eq,
            Tok::Ne => Cmp::Ne,
            Tok::Lt => Cmp::Lt,
            Tok::Le => Cmp::Le,
            Tok::Gt => Cmp::Gt,
            Tok::Ge => Cmp::Ge,
            ref other => {
                return Err(self.diag_here(format!(
                    "expected a comparison (==, !=, <, <=, >, >=), found {}",
                    other.describe()
                )))
            }
        };
        self.bump();
        let rhs = self.operand("the compared value")?;
        Ok(TestAst { mask, cmp, rhs })
    }

    fn site(&mut self) -> Result<SiteAst, Diagnostic> {
        self.expect(Tok::Dot, "'.' and a barrier mode")?;
        let (name, mode_span) = self.expect_ident("a barrier mode")?;
        let mode = mode_of(&name).ok_or_else(|| {
            self.diag(format!("unknown barrier mode '{name}' (rlx, acq, rel, acq_rel, sc)"), mode_span)
        })?;
        let fixed = self.eat(&Tok::Bang);
        let site_name = if self.eat(&Tok::At) {
            match &self.peek().tok {
                Tok::Str(_) => Some(self.expect_string("a site name")?),
                Tok::Ident(_) => {
                    let (mut name, mut span) = self.expect_ident("a site name")?;
                    // Dotted site names (`dpdk.acquire.xchg`).
                    while self.peek().tok == Tok::Dot && matches!(self.peek2(), Tok::Ident(_)) {
                        self.bump();
                        let (seg, seg_span) = self.expect_ident("a site-name segment")?;
                        name.push('.');
                        name.push_str(&seg);
                        // Widen the span only while the chain stays on the
                        // name's line (newlines are whitespace, so a
                        // segment may legally continue on the next line).
                        if seg_span.line == span.line && seg_span.col + seg_span.len > span.col {
                            span.len = seg_span.col + seg_span.len - span.col;
                        }
                    }
                    Some((name, span))
                }
                other => {
                    return Err(self.diag_here(format!(
                        "expected a site name, found {}",
                        other.describe()
                    )))
                }
            }
        } else {
            None
        };
        Ok(SiteAst { mode, mode_span, fixed, name: site_name })
    }
}

fn mode_of(s: &str) -> Option<Mode> {
    match s {
        "rlx" => Some(Mode::Rlx),
        "acq" => Some(Mode::Acq),
        "rel" => Some(Mode::Rel),
        "acq_rel" => Some(Mode::AcqRel),
        "sc" => Some(Mode::Sc),
        _ => None,
    }
}

fn rmw_of(s: &str) -> Option<RmwOp> {
    match s {
        "xchg" => Some(RmwOp::Xchg),
        "add" => Some(RmwOp::Add),
        "sub" => Some(RmwOp::Sub),
        "or" => Some(RmwOp::Or),
        "and" => Some(RmwOp::And),
        "xor" => Some(RmwOp::Xor),
        _ => None,
    }
}

/// ALU mnemonics (`Display` is not defined for [`AluOp`] upstream).
pub(crate) fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
    }
}

fn alu_of(s: &str) -> Option<AluOp> {
    match s {
        "add" => Some(AluOp::Add),
        "sub" => Some(AluOp::Sub),
        "and" => Some(AluOp::And),
        "or" => Some(AluOp::Or),
        "xor" => Some(AluOp::Xor),
        "shl" => Some(AluOp::Shl),
        "shr" => Some(AluOp::Shr),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_file() {
        let f = parse(
            r#"
            litmus "sb"
            init { x = 0  y @ 0x20 = 0 }
            thread { store.rlx x, 1  r0 = load.rlx y }
            thread { store.rlx y, 1  r0 = load.rlx x }
            expect sc: verified = 3
            "#,
        )
        .unwrap();
        assert_eq!(f.name, "sb");
        assert_eq!(f.items.len(), 4);
        assert!(matches!(&f.items[0], Item::Init { decls, .. } if decls.len() == 2));
        assert!(matches!(
            &f.items[3],
            Item::Expect { verdict: ExpectedVerdict::Verified, executions: Some(3), .. }
        ));
    }

    #[test]
    fn parses_every_statement_form() {
        let f = parse(
            r#"
            litmus all
            thread[2] {
            top:
              r0 = load.acq@shared x
              store.rel! x, r0
              r1 = rmw.add.acq_rel x, 1
              r2 = cas.sc x, 0, r1
              fence.sc
              r3 = await_load.acq x until & 0xff == 0
              r4 = await_eq.rlx x, 1
              r5 = await_neq.rlx x, 0
              r6 = await_rmw.xchg.acq x, 1 until == 0
              r7 = await_cas.acq_rel x, 0, 1
              r8 = mov 5
              r9 = shl r8, 2
              r10 = load.rlx [r9 + 0x8]
              jmp top if r10 != 0
              assert r10 == 0, "done"
              nop
            }
            "#,
        )
        .unwrap();
        let Item::Thread { count, stmts, .. } = &f.items[0] else { panic!() };
        assert_eq!(count.map(|c| c.0), Some(2));
        assert_eq!(stmts.len(), 17);
        assert!(matches!(&stmts[0].kind, StmtKind::Label(n, _) if n == "top"));
    }

    #[test]
    fn parses_dotted_and_quoted_site_names() {
        let f = parse(r#"litmus x thread { store.rel@dpdk.acquire.store_next 0x10, 1 fence.sc@"2+2w.t0.s1" }"#)
            .unwrap();
        let Item::Thread { stmts, .. } = &f.items[0] else { panic!() };
        let StmtKind::Store { site, .. } = &stmts[0].kind else { panic!() };
        assert_eq!(site.name.as_ref().unwrap().0, "dpdk.acquire.store_next");
        let StmtKind::Fence { site } = &stmts[1].kind else { panic!() };
        assert_eq!(site.name.as_ref().unwrap().0, "2+2w.t0.s1");
    }

    #[test]
    fn dotted_site_name_across_lines_does_not_panic() {
        // Newlines are whitespace, so a dotted chain may continue on the
        // next line with a column before the name's start; the span must
        // not underflow.
        let f = parse("litmus x thread { store.rel@longsitename\n.b y, 1 }").unwrap();
        let Item::Thread { stmts, .. } = &f.items[0] else { panic!() };
        let StmtKind::Store { site, .. } = &stmts[0].kind else { panic!() };
        assert_eq!(site.name.as_ref().unwrap().0, "longsitename.b");
    }

    #[test]
    fn rejects_bare_register_as_address() {
        let e = parse("litmus x thread { r0 = load.rlx r1 }").unwrap_err();
        assert!(e.message.contains("brackets"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_register() {
        let e = parse("litmus x thread { r32 = mov 1 }").unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        assert_eq!((e.span.line, e.span.col), (1, 19));
    }

    #[test]
    fn rejects_count_on_failing_expectation() {
        let e = parse("litmus x expect vmm: safety = 3").unwrap_err();
        assert!(e.message.contains("only apply to 'verified'"), "{e}");
    }

    #[test]
    fn rejects_unknown_mode_with_span() {
        let e = parse("litmus x thread { r0 = load.foo y }").unwrap_err();
        assert!(e.message.contains("unknown barrier mode 'foo'"), "{e}");
        assert_eq!((e.span.line, e.span.col, e.span.len), (1, 29, 3));
    }

    #[test]
    fn rejects_register_location_names() {
        let e = parse("litmus x init { r1 = 0 }").unwrap_err();
        assert!(e.message.contains("reserved for registers"), "{e}");
    }
}
