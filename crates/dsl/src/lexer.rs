//! Hand-rolled lexer for the litmus DSL.
//!
//! Newlines are plain whitespace — the grammar is fully self-delimiting —
//! so the token stream is flat. Comments (`#` or `//` to end of line) are
//! not tokens; they are collected separately so the formatter can
//! re-attach them to the statement that follows them.

use crate::diag::{Diagnostic, Span};

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    /// Identifier / keyword (may contain `_` and `-` after the first char).
    Ident(String),
    /// Unsigned integer literal; `hex` records the written base so the
    /// formatter can preserve it.
    Int { value: u64, hex: bool },
    /// Double-quoted string literal (escapes resolved).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `&`
    Amp,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl Tok {
    /// Short description for "expected X, found Y" messages.
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("'{s}'"),
            Tok::Int { value, .. } => format!("'{value}'"),
            Tok::Str(_) => "a string".to_owned(),
            Tok::LBrace => "'{'".to_owned(),
            Tok::RBrace => "'}'".to_owned(),
            Tok::LBracket => "'['".to_owned(),
            Tok::RBracket => "']'".to_owned(),
            Tok::Comma => "','".to_owned(),
            Tok::Colon => "':'".to_owned(),
            Tok::Dot => "'.'".to_owned(),
            Tok::At => "'@'".to_owned(),
            Tok::Bang => "'!'".to_owned(),
            Tok::Eq => "'='".to_owned(),
            Tok::Plus => "'+'".to_owned(),
            Tok::Amp => "'&'".to_owned(),
            Tok::EqEq => "'=='".to_owned(),
            Tok::Ne => "'!='".to_owned(),
            Tok::Lt => "'<'".to_owned(),
            Tok::Le => "'<='".to_owned(),
            Tok::Gt => "'>'".to_owned(),
            Tok::Ge => "'>='".to_owned(),
            Tok::Eof => "end of input".to_owned(),
        }
    }
}

/// A token plus its source span.
#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub(crate) tok: Tok,
    pub(crate) span: Span,
}

/// A comment line collected during lexing (text without the marker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Comment {
    /// 1-based source line the comment starts on.
    pub(crate) line: u32,
    /// Comment text, trimmed, without the `#` / `//` marker.
    pub(crate) text: String,
}

/// Lexer output: tokens, source lines (for excerpts) and comments.
#[derive(Debug)]
pub(crate) struct Lexed {
    pub(crate) tokens: Vec<Token>,
    pub(crate) lines: Vec<String>,
    pub(crate) comments: Vec<Comment>,
}

impl Lexed {
    /// The source line a span points into (empty past the end).
    pub(crate) fn line(&self, line: u32) -> &str {
        self.lines.get(line.saturating_sub(1) as usize).map_or("", String::as_str)
    }

    /// A diagnostic anchored at `span`.
    pub(crate) fn diag(&self, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::new(message, span, self.line(span.line))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Tokenize `src`.
pub(crate) fn lex(src: &str) -> Result<Lexed, Diagnostic> {
    let lines: Vec<String> = src.lines().map(str::to_owned).collect();
    let excerpt = |line: u32| -> String {
        lines.get(line.saturating_sub(1) as usize).cloned().unwrap_or_default()
    };
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let (mut i, mut line, mut col) = (0usize, 1u32, 1u32);
    macro_rules! fail {
        ($span:expr, $($msg:tt)*) => {
            return Err(Diagnostic::new(format!($($msg)*), $span, excerpt($span.line)))
        };
    }
    while i < chars.len() {
        let c = chars[i];
        let span1 = Span::new(line, col, 1);
        // Whitespace (newlines included — the grammar is self-delimiting).
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments: `#` or `//` to end of line.
        if c == '#' || (c == '/' && chars.get(i + 1) == Some(&'/')) {
            let skip = if c == '#' { 1 } else { 2 };
            let start = i + skip;
            let mut end = start;
            while end < chars.len() && chars[end] != '\n' {
                end += 1;
            }
            let text: String = chars[start..end].iter().collect();
            comments.push(Comment { line, text: text.trim().to_owned() });
            col += (end - i) as u32;
            i = end;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let len = (i - start) as u32;
            tokens.push(Token { tok: Tok::Ident(text), span: Span::new(line, col, len) });
            col += len;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let len = (i - start) as u32;
            let span = Span::new(line, col, len);
            let digits = text.replace('_', "");
            let (value, hex) = if let Some(h) = digits.strip_prefix("0x").or(digits.strip_prefix("0X")) {
                (u64::from_str_radix(h, 16), true)
            } else {
                (digits.parse::<u64>(), false)
            };
            match value {
                Ok(value) => tokens.push(Token { tok: Tok::Int { value, hex }, span }),
                Err(_) => fail!(span, "invalid integer literal '{text}'"),
            }
            col += len;
            continue;
        }
        if c == '"' {
            let (start_line, start_col) = (line, col);
            i += 1;
            col += 1;
            let mut text = String::new();
            loop {
                match chars.get(i) {
                    None | Some('\n') => {
                        fail!(Span::new(start_line, start_col, col - start_col), "unterminated string literal")
                    }
                    Some('"') => {
                        i += 1;
                        col += 1;
                        break;
                    }
                    Some('\\') => {
                        let esc_span = Span::new(line, col, 2);
                        let e = chars.get(i + 1).copied();
                        match e {
                            Some('"') => text.push('"'),
                            Some('\\') => text.push('\\'),
                            Some('n') => text.push('\n'),
                            Some('t') => text.push('\t'),
                            Some('r') => text.push('\r'),
                            Some(other) => fail!(esc_span, "unknown escape '\\{other}' in string"),
                            None => fail!(esc_span, "unterminated string literal"),
                        }
                        i += 2;
                        col += 2;
                    }
                    Some(&ch) => {
                        text.push(ch);
                        i += 1;
                        col += 1;
                    }
                }
            }
            let len = col - start_col;
            tokens.push(Token { tok: Tok::Str(text), span: Span::new(start_line, start_col, len) });
            continue;
        }
        // Punctuation, with two-character lookahead for comparisons.
        let two = chars.get(i + 1).copied();
        let (tok, len) = match (c, two) {
            ('=', Some('=')) => (Tok::EqEq, 2),
            ('=', _) => (Tok::Eq, 1),
            ('!', Some('=')) => (Tok::Ne, 2),
            ('!', _) => (Tok::Bang, 1),
            ('<', Some('=')) => (Tok::Le, 2),
            ('<', _) => (Tok::Lt, 1),
            ('>', Some('=')) => (Tok::Ge, 2),
            ('>', _) => (Tok::Gt, 1),
            ('{', _) => (Tok::LBrace, 1),
            ('}', _) => (Tok::RBrace, 1),
            ('[', _) => (Tok::LBracket, 1),
            (']', _) => (Tok::RBracket, 1),
            (',', _) => (Tok::Comma, 1),
            (':', _) => (Tok::Colon, 1),
            ('.', _) => (Tok::Dot, 1),
            ('@', _) => (Tok::At, 1),
            ('+', _) => (Tok::Plus, 1),
            ('&', _) => (Tok::Amp, 1),
            (other, _) => fail!(span1, "unexpected character '{other}'"),
        };
        tokens.push(Token { tok, span: Span::new(line, col, len) });
        i += len as usize;
        col += len;
    }
    let end_line = lines.len().max(1) as u32;
    let end_col = lines.last().map_or(1, |l| l.chars().count() as u32 + 1);
    tokens.push(Token { tok: Tok::Eof, span: Span::new(end_line, end_col, 1) });
    Ok(Lexed { tokens, lines, comments })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().tokens.into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_core_tokens() {
        assert_eq!(
            toks("r0 = load.acq x"),
            vec![
                Tok::Ident("r0".into()),
                Tok::Eq,
                Tok::Ident("load".into()),
                Tok::Dot,
                Tok::Ident("acq".into()),
                Tok::Ident("x".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers_both_bases() {
        assert_eq!(
            toks("16 0x10"),
            vec![
                Tok::Int { value: 16, hex: false },
                Tok::Int { value: 16, hex: true },
                Tok::Eof
            ]
        );
        assert!(lex("0xzz").is_err());
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn lexes_comparisons_and_bang() {
        assert_eq!(toks("== != <= >= < > !"), vec![
            Tok::EqEq, Tok::Ne, Tok::Le, Tok::Ge, Tok::Lt, Tok::Gt, Tok::Bang, Tok::Eof
        ]);
    }

    #[test]
    fn dashed_idents_are_single_tokens() {
        assert_eq!(toks("await-termination"), vec![Tok::Ident("await-termination".into()), Tok::Eof]);
    }

    #[test]
    fn strings_resolve_escapes() {
        assert_eq!(toks(r#""a\"b\n""#), vec![Tok::Str("a\"b\n".into()), Tok::Eof]);
        assert!(lex("\"abc").is_err());
        assert!(lex(r#""\q""#).is_err());
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let l = lex("# top\nnop // trailing\n").unwrap();
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0], Comment { line: 1, text: "top".into() });
        assert_eq!(l.comments[1], Comment { line: 2, text: "trailing".into() });
        assert_eq!(l.tokens.len(), 2); // nop + eof
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let l = lex("a\n  bb").unwrap();
        assert_eq!(l.tokens[0].span, Span::new(1, 1, 1));
        assert_eq!(l.tokens[1].span, Span::new(2, 3, 2));
    }
}
