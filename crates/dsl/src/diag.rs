//! Span-carrying diagnostics with rustc-style source excerpts.

use std::fmt;

/// A half-open region of source text: 1-based line and column plus a
/// length in characters. Every token and AST node carries one so that
/// lowering errors can point back at the offending text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
    /// Number of characters covered (at least 1 for rendering).
    pub len: u32,
}

impl Span {
    /// A span covering `len` characters at `line:col`.
    pub fn new(line: u32, col: u32, len: u32) -> Span {
        Span { line, col, len }
    }
}

/// A parse or lowering error with a stable `line:col` location and the
/// offending source line, rendered rustc-style:
///
/// ```text
/// error: unknown barrier mode 'foo'
///  --> sb.litmus:4:11
///   4 | r0 = load.foo x
///     |           ^^^
/// ```
///
/// The message format is golden-tested; tools may match on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong (one line, no trailing punctuation).
    pub message: String,
    /// Location of the offending text.
    pub span: Span,
    /// The source line the span points into (without trailing newline).
    pub source_line: String,
    /// Display name of the source file, when known (set by
    /// [`Diagnostic::with_file`]; path-based entry points fill it in).
    pub file: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic from a message, span and the offending line.
    pub fn new(message: impl Into<String>, span: Span, source_line: impl Into<String>) -> Self {
        Diagnostic { message: message.into(), span, source_line: source_line.into(), file: None }
    }

    /// Attach a file display name (shown in the `-->` location line).
    #[must_use]
    pub fn with_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// Render the diagnostic with its source excerpt and caret line.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "error: {}", self.message);
        match &self.file {
            Some(f) => {
                let _ = writeln!(out, " --> {}:{}:{}", f, self.span.line, self.span.col);
            }
            None => {
                let _ = writeln!(out, " --> {}:{}", self.span.line, self.span.col);
            }
        }
        let gutter = format!("{:>4}", self.span.line);
        let _ = writeln!(out, "{gutter} | {}", self.source_line);
        let pad = " ".repeat(self.span.col.saturating_sub(1) as usize);
        let carets = "^".repeat(self.span.len.max(1) as usize);
        let _ = writeln!(out, "{} | {pad}{carets}", " ".repeat(gutter.len()));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_span() {
        let d = Diagnostic::new("unknown barrier mode 'foo'", Span::new(4, 11, 3), "r0 = load.foo x")
            .with_file("sb.litmus");
        let r = d.render();
        assert!(r.contains("error: unknown barrier mode 'foo'"));
        assert!(r.contains(" --> sb.litmus:4:11"));
        assert!(r.contains("   4 | r0 = load.foo x"));
        assert!(r.contains("     |           ^^^"));
    }

    #[test]
    fn render_without_file() {
        let d = Diagnostic::new("boom", Span::new(1, 1, 1), "x");
        assert!(d.render().contains(" --> 1:1"));
        assert_eq!(d.to_string().lines().count(), 4);
    }
}
