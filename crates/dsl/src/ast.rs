//! The parsed form of a litmus file.
//!
//! The AST preserves surface details the [`crate::lower`]ed
//! [`vsync_lang::Program`] discards — location names, label names, thread
//! templates, integer bases and comment placement — so the formatter
//! (`vsync fmt`) can re-emit files canonically without losing authorship
//! intent. Every node carries the [`Span`]s lowering needs for
//! diagnostics.

use vsync_graph::Mode;
use vsync_lang::{AluOp, Cmp, RmwOp};
use vsync_model::ModelKind;

use crate::diag::Span;
use crate::lexer::Comment;

/// An integer literal with its written base (for canonical reprinting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntLit {
    /// The value.
    pub value: u64,
    /// Was it written in hexadecimal?
    pub hex: bool,
}

impl IntLit {
    /// A decimal literal.
    pub fn dec(value: u64) -> IntLit {
        IntLit { value, hex: false }
    }

    /// A hexadecimal literal.
    pub fn hex(value: u64) -> IntLit {
        IntLit { value, hex: true }
    }
}

impl std::fmt::Display for IntLit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.hex {
            write!(f, "{:#x}", self.value)
        } else {
            write!(f, "{}", self.value)
        }
    }
}

/// A whole parsed file: header, items in source order, plus the raw lines
/// and comments needed for diagnostics and comment-preserving formatting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Program name from the `litmus "name"` header.
    pub name: String,
    /// Span of the header name.
    pub name_span: Span,
    /// Sections in source order.
    pub items: Vec<Item>,
    /// Source line of the header (for comment placement).
    pub header_line: u32,
    /// Full-line and trailing comments, in source order.
    pub(crate) comments: Vec<Comment>,
    /// The raw source lines (for diagnostics built during lowering).
    pub(crate) lines: Vec<String>,
}

impl SourceFile {
    /// A diagnostic anchored at `span` with its source excerpt.
    pub(crate) fn diag(&self, message: impl Into<String>, span: Span) -> crate::Diagnostic {
        let line = self.lines.get(span.line.saturating_sub(1) as usize);
        crate::Diagnostic::new(message, span, line.cloned().unwrap_or_default())
    }
}

/// One top-level section.
#[derive(Debug, Clone)]
pub enum Item {
    /// `init { ... }`
    Init {
        /// Location declarations, in source order.
        decls: Vec<LocDecl>,
        /// Source line of the `init` keyword.
        line: u32,
    },
    /// `thread { ... }` or `thread[n] { ... }` (a template instantiated
    /// `n` times — the threads share one symmetry class by construction).
    Thread {
        /// Template replication count (`None` = a single thread).
        count: Option<(u64, Span)>,
        /// Statements of the thread body.
        stmts: Vec<Stmt>,
        /// Source line of the `thread` keyword.
        line: u32,
    },
    /// `final { ... }`
    Final {
        /// Final-state checks.
        checks: Vec<FinalCheckAst>,
        /// Source line of the `final` keyword.
        line: u32,
    },
    /// `expect <model>: <verdict> [= N]`
    Expect {
        /// Checked memory model.
        model: ModelKind,
        /// Span of the model name.
        model_span: Span,
        /// Expected verdict.
        verdict: ExpectedVerdict,
        /// Exact complete-execution count (only with `verified`; checked
        /// under the default symmetry-on counting).
        executions: Option<u64>,
        /// Source line of the `expect` keyword.
        line: u32,
    },
    /// `symmetry { 0 2 } { 1 }` — an explicit declared thread partition
    /// (rare; emitted by the printer only when the declaration differs
    /// from the detected partition).
    Symmetry {
        /// Thread-index groups.
        groups: Vec<Vec<(u64, Span)>>,
        /// Source line of the `symmetry` keyword.
        line: u32,
    },
}

impl Item {
    /// Source line of the section keyword (for comment placement).
    pub fn line(&self) -> u32 {
        match self {
            Item::Init { line, .. }
            | Item::Thread { line, .. }
            | Item::Final { line, .. }
            | Item::Expect { line, .. }
            | Item::Symmetry { line, .. } => *line,
        }
    }
}

/// A location declaration inside `init { ... }`:
/// `name [@ addr] [= value]` or `addr = value`.
#[derive(Debug, Clone)]
pub struct LocDecl {
    /// Named or address-literal location.
    pub name: LocName,
    /// Explicit address (`@ 0x100`), for named locations.
    pub addr: Option<IntLit>,
    /// Initial value (locations default to 0).
    pub init: Option<IntLit>,
    /// Source line (for comment placement).
    pub line: u32,
}

/// The subject of a [`LocDecl`].
#[derive(Debug, Clone)]
pub enum LocName {
    /// A symbolic location name.
    Named(String, Span),
    /// A raw address literal.
    Addr(IntLit, Span),
}

/// A memory-location reference in code: a declared name (with optional
/// byte offset), a raw address, or a register-indirect access.
#[derive(Debug, Clone)]
pub enum AddrAst {
    /// `name` or `name + off`.
    Name {
        /// Declared (or auto-declared) location name.
        name: String,
        /// Optional byte offset.
        offset: Option<IntLit>,
        /// Span of the name.
        span: Span,
    },
    /// A raw address literal.
    Lit(IntLit, Span),
    /// `[rN]` or `[rN + off]`.
    Reg {
        /// Base register.
        reg: u8,
        /// Optional byte offset.
        offset: Option<IntLit>,
        /// Span of the register token.
        span: Span,
    },
}

/// A value operand: register, integer, or a location name used as an
/// address immediate (queue locks store node addresses into memory).
#[derive(Debug, Clone)]
pub enum OperandAst {
    /// A register.
    Reg(u8, Span),
    /// An immediate.
    Lit(IntLit, Span),
    /// A declared location's address, as an immediate.
    Name(String, Span),
}

/// A predicate `[& mask] cmp rhs` (the `v` is implicit).
#[derive(Debug, Clone)]
pub struct TestAst {
    /// Optional mask applied before comparing.
    pub mask: Option<OperandAst>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: OperandAst,
}

/// A barrier-site annotation: `.mode [!] [@ name]`.
#[derive(Debug, Clone)]
pub struct SiteAst {
    /// Barrier mode.
    pub mode: Mode,
    /// Span of the mode name.
    pub mode_span: Span,
    /// `!` — excluded from optimization.
    pub fixed: bool,
    /// Explicit site name (shared across threads by name).
    pub name: Option<(String, Span)>,
}

/// One final-state check: `loc test [: "message"]`.
#[derive(Debug, Clone)]
pub struct FinalCheckAst {
    /// Checked location (named or literal).
    pub loc: AddrAst,
    /// Predicate on the final value.
    pub test: TestAst,
    /// Failure message.
    pub msg: Option<String>,
    /// Source line (for comment placement).
    pub line: u32,
}

/// A statement in a thread body.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// The statement proper.
    pub kind: StmtKind,
    /// Source line (for comment placement).
    pub line: u32,
}

/// Statement kinds. Shared-memory statements carry a [`SiteAst`].
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `name:` — a label binding.
    Label(String, Span),
    /// `store.mode addr, src`
    Store {
        /// Barrier site.
        site: SiteAst,
        /// Target address.
        addr: AddrAst,
        /// Stored value.
        src: OperandAst,
    },
    /// `fence.mode`
    Fence {
        /// Barrier site.
        site: SiteAst,
    },
    /// `jmp label [if src test]`
    Jmp {
        /// Target label name.
        target: (String, Span),
        /// Branch condition (`None` = unconditional).
        cond: Option<(OperandAst, TestAst)>,
    },
    /// `assert src test [, "message"]`
    Assert {
        /// Tested operand.
        src: OperandAst,
        /// Predicate.
        test: TestAst,
        /// Message attached to the error event.
        msg: Option<String>,
    },
    /// `nop`
    Nop,
    /// `rN = <rhs>`
    Assign {
        /// Destination register.
        dst: (u8, Span),
        /// Right-hand side.
        rhs: RhsAst,
    },
}

/// The right-hand side of a register assignment.
#[derive(Debug, Clone)]
pub enum RhsAst {
    /// `load.mode addr`
    Load {
        /// Barrier site.
        site: SiteAst,
        /// Loaded address.
        addr: AddrAst,
    },
    /// `rmw.op.mode addr, operand`
    Rmw {
        /// Update operation.
        op: RmwOp,
        /// Barrier site.
        site: SiteAst,
        /// Target address.
        addr: AddrAst,
        /// Operand of the update.
        operand: OperandAst,
    },
    /// `cas.mode addr, expected, new`
    Cas {
        /// Barrier site.
        site: SiteAst,
        /// Target address.
        addr: AddrAst,
        /// Expected value.
        expected: OperandAst,
        /// New value on success.
        new: OperandAst,
    },
    /// `await_load.mode addr until test`
    AwaitLoad {
        /// Barrier site.
        site: SiteAst,
        /// Polled address.
        addr: AddrAst,
        /// Exit condition.
        until: TestAst,
    },
    /// `await_rmw.op.mode addr, operand until test`
    AwaitRmw {
        /// Update operation applied on exit.
        op: RmwOp,
        /// Barrier site.
        site: SiteAst,
        /// Polled address.
        addr: AddrAst,
        /// Operand of the update.
        operand: OperandAst,
        /// Exit condition on the old value.
        until: TestAst,
    },
    /// `await_cas.mode addr, expected, new`
    AwaitCas {
        /// Barrier site.
        site: SiteAst,
        /// Polled address.
        addr: AddrAst,
        /// Expected value.
        expected: OperandAst,
        /// New value.
        new: OperandAst,
    },
    /// `mov operand`
    Mov {
        /// Source operand.
        src: OperandAst,
    },
    /// `<aluop> a, b`
    Alu {
        /// Operation.
        op: AluOp,
        /// Left operand.
        a: OperandAst,
        /// Right operand.
        b: OperandAst,
    },
}

/// The verdict a litmus file expects from one memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpectedVerdict {
    /// Every execution safe, every await terminates.
    Verified,
    /// A safety violation (failed assertion or final-state check).
    Safety,
    /// An await-termination violation.
    AwaitTermination,
    /// A modeling-obligation or budget fault.
    Fault,
}

impl ExpectedVerdict {
    /// Canonical annotation spelling (`verified`, `safety`,
    /// `await-termination`, `fault`).
    pub fn name(self) -> &'static str {
        match self {
            ExpectedVerdict::Verified => "verified",
            ExpectedVerdict::Safety => "safety",
            ExpectedVerdict::AwaitTermination => "await-termination",
            ExpectedVerdict::Fault => "fault",
        }
    }

    /// Parse the canonical spelling.
    pub fn from_name(s: &str) -> Option<ExpectedVerdict> {
        match s {
            "verified" => Some(ExpectedVerdict::Verified),
            "safety" => Some(ExpectedVerdict::Safety),
            "await-termination" => Some(ExpectedVerdict::AwaitTermination),
            "fault" => Some(ExpectedVerdict::Fault),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExpectedVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One `expect` annotation, after lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expectation {
    /// The checked memory model.
    pub model: ModelKind,
    /// The expected verdict kind.
    pub verdict: ExpectedVerdict,
    /// Exact complete-execution count (canonical-orbit counts — only
    /// meaningful for `verified` runs with symmetry reduction enabled).
    pub executions: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_lit_display_preserves_base() {
        assert_eq!(IntLit::dec(16).to_string(), "16");
        assert_eq!(IntLit::hex(16).to_string(), "0x10");
    }

    #[test]
    fn expected_verdict_names_round_trip() {
        for v in [
            ExpectedVerdict::Verified,
            ExpectedVerdict::Safety,
            ExpectedVerdict::AwaitTermination,
            ExpectedVerdict::Fault,
        ] {
            assert_eq!(ExpectedVerdict::from_name(v.name()), Some(v));
        }
        assert_eq!(ExpectedVerdict::from_name("nope"), None);
    }
}
