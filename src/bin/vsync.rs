//! `vsync` — command-line front end for the model checker and optimizer.
//!
//! ```text
//! vsync locks                         list the verifiable lock catalog
//! vsync verify <lock> [opts]          AMC-verify a lock's generic client
//! vsync optimize <lock> [opts]        push-button barrier optimization
//! vsync bug <dpdk|huawei> [--fixed]   run a §3 study-case scenario
//! vsync litmus <sb|mp|lb|iriw>        explore a classic litmus shape
//!
//! options:
//!   --threads N     client threads (default 2)
//!   --acquires K    acquisitions per thread (default 1)
//!   --model M       sc | tso | vmm (default vmm)
//!   --enumerate     (optimize) list all maximally-relaxed assignments
//!   --dot           (verify/bug) print counterexamples as Graphviz
//! ```

use std::process::ExitCode;

use vsync::core::{
    enumerate_maximal, explore, optimize, AmcConfig, OptimizerConfig, Verdict,
};
use vsync::graph::{to_dot, Mode};
use vsync::lang::{Program, ProgramBuilder, Reg};
use vsync::locks::model::{all_lock_models, dpdk_scenario, huawei_scenario, mutex_client};
use vsync::model::ModelKind;

struct Options {
    threads: usize,
    acquires: usize,
    model: ModelKind,
    enumerate: bool,
    dot: bool,
    fixed: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            threads: 2,
            acquires: 1,
            model: ModelKind::Vmm,
            enumerate: false,
            dot: false,
            fixed: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--threads" => {
                    o.threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--threads needs a number")?
                }
                "--acquires" => {
                    o.acquires = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--acquires needs a number")?
                }
                "--model" => {
                    o.model = match it.next().map(String::as_str) {
                        Some("sc") => ModelKind::Sc,
                        Some("tso") => ModelKind::Tso,
                        Some("vmm") => ModelKind::Vmm,
                        other => return Err(format!("unknown model {other:?}")),
                    }
                }
                "--enumerate" => o.enumerate = true,
                "--dot" => o.dot = true,
                "--fixed" => o.fixed = true,
                other => return Err(format!("unknown option {other}")),
            }
        }
        Ok(o)
    }
}

fn lock_program(name: &str, o: &Options) -> Result<Program, String> {
    let locks = all_lock_models();
    let lock = locks
        .iter()
        .find(|l| l.name() == name)
        .ok_or_else(|| format!("unknown lock '{name}' (try `vsync locks`)"))?;
    Ok(mutex_client(lock.as_ref(), o.threads, o.acquires))
}

fn report(verdict: &Verdict, dot: bool) -> ExitCode {
    println!("{verdict}");
    if let Some(ce) = verdict.counterexample() {
        println!("\ncounterexample:\n{}", ce.graph.render());
        if dot {
            println!("{}", to_dot(&ce.graph));
        }
    }
    if verdict.is_verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn litmus(name: &str) -> Result<Program, String> {
    const X: u64 = 0x10;
    const Y: u64 = 0x20;
    let mut pb = ProgramBuilder::new(name);
    match name {
        "sb" => {
            for (a, b) in [(X, Y), (Y, X)] {
                pb.thread(move |t| {
                    t.store(a, 1u64, Mode::Rlx);
                    t.load(Reg(0), b, Mode::Rlx);
                });
            }
        }
        "mp" => {
            pb.thread(|t| {
                t.store(X, 1u64, Mode::Rlx);
                t.store(Y, 1u64, Mode::Rel);
            });
            pb.thread(|t| {
                t.load(Reg(0), Y, Mode::Acq);
                t.load(Reg(1), X, Mode::Rlx);
            });
        }
        "lb" => {
            for (a, b) in [(X, Y), (Y, X)] {
                pb.thread(move |t| {
                    t.load(Reg(0), a, Mode::Rlx);
                    t.store(b, 1u64, Mode::Rlx);
                });
            }
        }
        "iriw" => {
            pb.thread(|t| {
                t.store(X, 1u64, Mode::Rlx);
            });
            pb.thread(|t| {
                t.store(Y, 1u64, Mode::Rlx);
            });
            for (a, b) in [(X, Y), (Y, X)] {
                pb.thread(move |t| {
                    t.load(Reg(0), a, Mode::Rlx);
                    t.load(Reg(1), b, Mode::Rlx);
                });
            }
        }
        other => return Err(format!("unknown litmus '{other}' (sb, mp, lb, iriw)")),
    }
    pb.build().map_err(|e| e.to_string())
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            println!("usage: vsync <locks|verify|optimize|bug|litmus> ... (see --help)");
            return Ok(ExitCode::SUCCESS);
        }
    };
    if cmd == "--help" || cmd == "help" {
        println!("{}", include_str!("vsync.rs").lines().skip(2).take(14).map(|l| l.trim_start_matches("//! ")).collect::<Vec<_>>().join("\n"));
        return Ok(ExitCode::SUCCESS);
    }
    match cmd {
        "locks" => {
            for lock in all_lock_models() {
                println!("{}", lock.name());
            }
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let (name, rest) = rest.split_first().ok_or("verify needs a lock name")?;
            let o = Options::parse(rest)?;
            let p = lock_program(name, &o)?;
            let r = explore(&p, &AmcConfig::with_model(o.model));
            eprintln!(
                "{} under {} with {} thread(s) x {} acquire(s): {}",
                name, o.model, o.threads, o.acquires, r.stats
            );
            Ok(report(&r.verdict, o.dot))
        }
        "optimize" => {
            let (name, rest) = rest.split_first().ok_or("optimize needs a lock name")?;
            let o = Options::parse(rest)?;
            let p = lock_program(name, &o)?.with_all_sc();
            let cfg = OptimizerConfig { amc: AmcConfig::with_model(o.model), max_passes: 0 };
            if o.enumerate {
                let (names, maximal) = enumerate_maximal(&p, &cfg);
                println!("{} maximally-relaxed assignment(s):", maximal.len());
                for (i, modes) in maximal.iter().enumerate() {
                    println!("#{i}");
                    for (n, m) in names.iter().zip(modes) {
                        println!("  {n:<44} {m}");
                    }
                }
            } else {
                let report = optimize(&p, &cfg);
                print!("{}", report.render());
                if !report.verified {
                    return Ok(ExitCode::FAILURE);
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "bug" => {
            let (which, rest) = rest.split_first().ok_or("bug needs dpdk|huawei")?;
            let o = Options::parse(rest)?;
            let p = match which.as_str() {
                "dpdk" => dpdk_scenario(o.fixed),
                "huawei" => huawei_scenario(o.fixed),
                other => return Err(format!("unknown study case '{other}'")),
            };
            let r = explore(&p, &AmcConfig::with_model(o.model));
            Ok(report(&r.verdict, o.dot))
        }
        "litmus" => {
            let (name, rest) = rest.split_first().ok_or("litmus needs a shape name")?;
            let o = Options::parse(rest)?;
            let p = litmus(name)?;
            let r = explore(&p, &AmcConfig::with_model(o.model).collecting());
            println!(
                "{name} under {}: {} consistent executions",
                o.model, r.stats.complete_executions
            );
            for (i, g) in r.executions.iter().enumerate() {
                println!("--- execution {i} ---\n{}", g.render());
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
