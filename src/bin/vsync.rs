//! `vsync` — command-line front end for the model checker and optimizer.
//!
//! See [`HELP`] for the command and option summary.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use vsync::core::{
    collect_litmus_files, enumerate_maximal, render_metrics, run_corpus, AmcConfig, CancelToken,
    CorpusOptions, CorpusReport, FileOutcome, OptimizeStrategy, OptimizerConfig, PhaseProfile,
    ProgressSnapshot, Report, SearchMode, Session, TraceWriter,
};
use vsync::graph::{to_dot, Mode};
use vsync::lang::{Program, ProgramBuilder, Reg};
use vsync::locks::model::{dpdk_scenario, huawei_scenario};
use vsync::locks::registry;
use vsync::model::{checker_attribution, set_checker_attribution, ModelKind};

/// Command and option summary (also the `--help` text).
const HELP: &str = "\
vsync locks                         list the verifiable lock catalog
                                    (name, family, relaxable sites, summary)
vsync verify <lock> [opts]          AMC-verify a lock's generic client
vsync optimize <lock> [opts]        push-button barrier optimization
vsync bug <dpdk|huawei> [--fixed]   run a §3 study-case scenario
vsync litmus <sb|mp|lb|iriw>        explore a classic litmus shape
vsync check <file.litmus> [opts]    verify a litmus file against its
                                    `expect <model>: <verdict>` annotations
                                    (exit code reflects mismatches)
vsync corpus <dir> [opts]           batch-check every *.litmus under dir
                                    (per-file verdict table)
vsync fmt [--check|--write] <path>  canonically format litmus files
                                    (--check: fail if not canonical;
                                     --write: rewrite in place)

options:
  --threads N      client threads (default 2)
  --acquires K     acquisitions per thread (default 1)
  --model M        sc | tso | vmm (default vmm)
  --models A,B     comma-separated model matrix (overrides --model)
  --workers N      worker threads: sizes each exploration and the
                   optimizer's candidate-screening pool (default 1)
  --deadline-ms T  wall-clock budget; expiry reports `inconclusive`
  --max-memory-mb N  approximate heap budget per exploration (frontier +
                   dedup table); exhaustion reports `inconclusive` with
                   partial counters instead of aborting (default: unlimited)
  --max-dedup N    cap on dedup-table entries per exploration; exhaustion
                   reports `inconclusive` (default: unlimited)
  --no-symmetry    disable thread-symmetry reduction: explore every
                   relabeled twin of template-identical client threads
                   distinctly (naive reference counts; default prunes
                   them, reported as `sym-pruned`)
  --search S       revisit | enumerate (default revisit): revisit is the
                   stateless-optimal reads-from search constructing each
                   consistent graph at most once; enumerate is the naive
                   enumerate-and-dedup reference oracle
  --json           (verify/optimize/bug/check/corpus) print the report as JSON
  --progress       (verify/bug/check/corpus) stream progress snapshots to stderr
  --jobs J         (corpus) files checked concurrently (default: cores, max 8)
  --strategy S     (optimize) sequential | parallel | adaptive
                   (default adaptive; sequential is the reference loop)
  --passes N       (optimize) cap optimization passes (default: fixpoint)
  --steps          (optimize) stream per-step relaxation events to stderr
  --enumerate      (optimize) list all maximally-relaxed assignments
  --dot            (verify/bug) print counterexamples as Graphviz
  --dot DIR        (check) write one Graphviz file per violating model
                   under DIR (rf/mo/po edges labeled)
  --trace FILE     (verify/optimize/bug/check/corpus) write engine
                   telemetry as a Chrome-trace JSON array to FILE
                   (loadable in Perfetto / chrome://tracing)
  --metrics        (verify/optimize/bug/check/corpus) print a per-phase
                   wall-clock attribution table to stderr after the run

exit codes:
  0  verified / every expectation met
  1  violation found or expectation mismatch
  2  inconclusive: cancelled, deadline expired, a resource budget
     (--max-memory-mb / --max-dedup / max-graphs) was exhausted, or the
     input file/directory was missing or unreadable
  3  engine error: a worker panicked (the panic was caught and reported)
     or a corpus file was quarantined";

struct Options {
    threads: usize,
    acquires: usize,
    models: Vec<ModelKind>,
    /// Was `--model`/`--models` given explicitly? (`check`/`corpus` only
    /// override a file's annotated matrix on explicit request.)
    models_set: bool,
    workers: usize,
    jobs: usize,
    deadline: Option<Duration>,
    max_memory_mb: u64,
    max_dedup: u64,
    json: bool,
    progress: bool,
    symmetry: bool,
    search: SearchMode,
    strategy: OptimizeStrategy,
    passes: usize,
    steps: bool,
    enumerate: bool,
    dot: bool,
    /// `--dot DIR` (check): directory for per-violation DOT files.
    dot_dir: Option<String>,
    /// `--trace FILE`: Chrome-trace telemetry export target.
    trace: Option<String>,
    metrics: bool,
    fixed: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            threads: 2,
            acquires: 1,
            models: vec![ModelKind::Vmm],
            models_set: false,
            workers: 1,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
            deadline: None,
            max_memory_mb: 0,
            max_dedup: 0,
            json: false,
            progress: false,
            symmetry: true,
            search: SearchMode::default(),
            strategy: OptimizeStrategy::default(),
            passes: 0,
            steps: false,
            enumerate: false,
            dot: false,
            dot_dir: None,
            trace: None,
            metrics: false,
            fixed: false,
        };
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--threads" => {
                    o.threads =
                        it.next().and_then(|v| v.parse().ok()).ok_or("--threads needs a number")?
                }
                "--acquires" => {
                    o.acquires =
                        it.next().and_then(|v| v.parse().ok()).ok_or("--acquires needs a number")?
                }
                "--model" => {
                    let m = it.next().ok_or("--model needs sc|tso|vmm")?;
                    o.models = vec![m.parse()?];
                    o.models_set = true;
                }
                "--models" => {
                    let ms = it.next().ok_or("--models needs a comma-separated list")?;
                    o.models = ms.split(',').map(str::parse).collect::<Result<Vec<_>, _>>()?;
                    o.models_set = true;
                }
                "--jobs" => {
                    o.jobs =
                        it.next().and_then(|v| v.parse().ok()).ok_or("--jobs needs a number")?
                }
                "--workers" => {
                    o.workers =
                        it.next().and_then(|v| v.parse().ok()).ok_or("--workers needs a number")?
                }
                "--deadline-ms" => {
                    let ms: u64 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--deadline-ms needs a number")?;
                    o.deadline = Some(Duration::from_millis(ms));
                }
                "--max-memory-mb" => {
                    o.max_memory_mb = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-memory-mb needs a number")?
                }
                "--max-dedup" => {
                    o.max_dedup = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-dedup needs a number")?
                }
                "--no-symmetry" => o.symmetry = false,
                "--search" => {
                    let s = it.next().ok_or("--search needs revisit|enumerate")?;
                    o.search = s.parse()?;
                }
                "--json" => o.json = true,
                "--progress" => o.progress = true,
                "--strategy" => {
                    let s = it.next().ok_or("--strategy needs sequential|parallel|adaptive")?;
                    o.strategy = s.parse()?;
                }
                "--passes" => {
                    o.passes =
                        it.next().and_then(|v| v.parse().ok()).ok_or("--passes needs a number")?
                }
                "--steps" => o.steps = true,
                "--enumerate" => o.enumerate = true,
                // `--dot` alone prints to stdout (verify/bug); with a
                // following path operand it names the output directory
                // for per-violation files (check).
                "--dot" => {
                    o.dot = true;
                    if let Some(v) = it.peek() {
                        if !v.starts_with("--") {
                            o.dot_dir = it.next().cloned();
                        }
                    }
                }
                "--trace" => {
                    o.trace = Some(it.next().ok_or("--trace needs a file path")?.clone());
                }
                "--metrics" => o.metrics = true,
                "--fixed" => o.fixed = true,
                other => return Err(format!("unknown option {other}")),
            }
        }
        Ok(o)
    }

    /// Corpus-runner options mirroring the session flags.
    fn corpus_options(&self) -> CorpusOptions {
        CorpusOptions {
            models: if self.models_set { Some(self.models.clone()) } else { None },
            workers: self.workers,
            jobs: self.jobs,
            no_symmetry: !self.symmetry,
            deadline: self.deadline,
            cancel: CancelToken::new(),
            max_memory_bytes: self.max_memory_mb * 1024 * 1024,
            max_dedup_entries: self.max_dedup,
            search: self.search,
            progress: self.progress.then(|| {
                Arc::new(|p: &ProgressSnapshot| {
                    eprintln!(
                        "[{}] {:.1?}: {} ({} workers)",
                        p.model, p.elapsed, p.stats, p.workers
                    );
                }) as Arc<dyn Fn(&ProgressSnapshot) + Send + Sync>
            }),
            on_event: None,
            profile: false,
        }
    }

    /// A session over `program` with every runtime option applied.
    fn session(&self, program: Program) -> Session {
        let mut s = Session::new(program)
            .models(self.models.iter().copied())
            .workers(self.workers)
            .symmetry(self.symmetry)
            .search(self.search)
            .max_memory_bytes(self.max_memory_mb * 1024 * 1024)
            .max_dedup_entries(self.max_dedup);
        if let Some(d) = self.deadline {
            s = s.deadline(d);
        }
        if self.progress {
            s = s.on_progress(|p| {
                eprintln!("[{}] {:.1?}: {} ({} workers)", p.model, p.elapsed, p.stats, p.workers);
            });
        }
        s
    }
}

/// CLI-side telemetry wiring for `--trace` / `--metrics`: an optional
/// Chrome-trace writer plus the checker-attribution snapshot taken
/// before the run (the counters are process-global, so only the delta
/// belongs to this run).
struct Telemetry {
    writer: Option<Arc<TraceWriter>>,
    metrics: bool,
    attr_before: (u64, u64),
}

impl Telemetry {
    fn start(o: &Options) -> Result<Telemetry, String> {
        let writer = match &o.trace {
            Some(path) => Some(Arc::new(
                TraceWriter::create(Path::new(path))
                    .map_err(|e| format!("cannot create trace file {path}: {e}"))?,
            )),
            None => None,
        };
        if o.metrics {
            set_checker_attribution(true);
        }
        Ok(Telemetry { writer, metrics: o.metrics, attr_before: checker_attribution() })
    }

    /// Apply to a session: enable profiling for `--metrics` and feed the
    /// event stream into the trace writer for `--trace`.
    fn session(&self, mut s: Session) -> Session {
        s = s.profile(self.metrics);
        if let Some(w) = &self.writer {
            let sink = w.sink();
            s = s.on_event(move |ev| sink(ev));
        }
        s
    }

    /// The corpus-runner analogue of [`Telemetry::session`].
    fn corpus(&self, opts: &mut CorpusOptions) {
        opts.profile = self.metrics;
        if let Some(w) = &self.writer {
            opts.on_event = Some(w.sink());
        }
    }

    /// Print the metrics table (stderr) and close the trace file.
    fn finish(&self, profile: &PhaseProfile, wall: Duration) {
        if self.metrics {
            eprint!("{}", render_metrics(profile, wall));
            let (fast, reference) = checker_attribution();
            eprintln!(
                "consistency checks: {} fast-path, {} reference",
                fast - self.attr_before.0,
                reference - self.attr_before.1
            );
            set_checker_attribution(false);
        }
        if let Some(w) = &self.writer {
            if let Err(e) = w.finish() {
                eprintln!("warning: trace file not fully written: {e}");
            }
        }
    }
}

/// Session-wide phase profile: every model's attribution merged.
fn report_profile(r: &Report) -> PhaseProfile {
    let mut p = PhaseProfile::default();
    for m in &r.models {
        p.merge(&m.stats.phases);
    }
    p
}

/// Corpus-wide phase profile: every checked model of every file merged.
fn corpus_profile(r: &CorpusReport) -> PhaseProfile {
    let mut p = PhaseProfile::default();
    for f in &r.files {
        if let FileOutcome::Checked(models) = &f.outcome {
            for m in models {
                p.merge(&m.phases);
            }
        }
    }
    p
}

/// `vsync check --dot DIR`: write one Graphviz file per violating model,
/// named `<file-stem>.<model>.dot`, and report how many were written.
fn write_corpus_dots(dir: &str, r: &CorpusReport) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let mut written = 0usize;
    for f in &r.files {
        let FileOutcome::Checked(models) = &f.outcome else { continue };
        let stem = Path::new(&f.path)
            .file_stem()
            .map_or_else(|| f.program.clone(), |s| s.to_string_lossy().into_owned());
        for m in models {
            let Some(ce) = m.verdict.counterexample() else { continue };
            let name = format!("{stem}.{}.dot", m.model.to_string().to_lowercase());
            let path = Path::new(dir).join(&name);
            std::fs::write(&path, to_dot(&ce.graph))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            written += 1;
        }
    }
    eprintln!("wrote {written} counterexample DOT file(s) under {dir}");
    Ok(())
}

/// Exit-code taxonomy (documented in `--help`): 0 verified, 1 violation
/// or mismatch, 2 inconclusive (cancel/deadline/budget), 3 engine error.
fn session_exit_code(r: &Report) -> ExitCode {
    if r.is_verified() {
        ExitCode::SUCCESS
    } else if r.is_errored() {
        ExitCode::from(3)
    } else if r.is_interrupted() {
        ExitCode::from(2)
    } else {
        ExitCode::FAILURE
    }
}

/// A missing or unreadable input is an environment problem, not a
/// verification verdict: report the structured diagnostic (which names
/// the offending path) and exit 2 (inconclusive) — distinct from
/// expectation mismatches (1) and engine errors (3).
fn unreadable_input(e: &vsync::core::SourceError) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(2)
}

/// The corpus analogue of [`session_exit_code`]: quarantined files and
/// engine errors dominate, then budget-starved (inconclusive) files.
fn corpus_exit_code(r: &vsync::core::CorpusReport) -> ExitCode {
    if r.errored() {
        ExitCode::from(3)
    } else if r.passed() {
        ExitCode::SUCCESS
    } else if r.files.iter().any(|f| f.interrupted()) {
        ExitCode::from(2)
    } else {
        ExitCode::FAILURE
    }
}

/// Print a session report and turn it into an exit code.
fn report(r: &Report, o: &Options) -> ExitCode {
    if o.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
        if o.dot {
            if let Some(ce) = r.models.iter().find_map(|m| m.verdict.counterexample()) {
                println!("{}", to_dot(&ce.graph));
            }
        }
    }
    session_exit_code(r)
}

fn litmus(name: &str) -> Result<Program, String> {
    const X: u64 = 0x10;
    const Y: u64 = 0x20;
    let mut pb = ProgramBuilder::new(name);
    match name {
        "sb" => {
            for (a, b) in [(X, Y), (Y, X)] {
                pb.thread(move |t| {
                    t.store(a, 1u64, Mode::Rlx);
                    t.load(Reg(0), b, Mode::Rlx);
                });
            }
        }
        "mp" => {
            pb.thread(|t| {
                t.store(X, 1u64, Mode::Rlx);
                t.store(Y, 1u64, Mode::Rel);
            });
            pb.thread(|t| {
                t.load(Reg(0), Y, Mode::Acq);
                t.load(Reg(1), X, Mode::Rlx);
            });
        }
        "lb" => {
            for (a, b) in [(X, Y), (Y, X)] {
                pb.thread(move |t| {
                    t.load(Reg(0), a, Mode::Rlx);
                    t.store(b, 1u64, Mode::Rlx);
                });
            }
        }
        "iriw" => {
            pb.thread(|t| {
                t.store(X, 1u64, Mode::Rlx);
            });
            pb.thread(|t| {
                t.store(Y, 1u64, Mode::Rlx);
            });
            for (a, b) in [(X, Y), (Y, X)] {
                pb.thread(move |t| {
                    t.load(Reg(0), a, Mode::Rlx);
                    t.load(Reg(1), b, Mode::Rlx);
                });
            }
        }
        other => return Err(format!("unknown litmus '{other}' (sb, mp, lb, iriw)")),
    }
    pb.build().map_err(|e| e.to_string())
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            println!(
                "usage: vsync <locks|verify|optimize|bug|litmus|check|corpus|fmt> ... (see --help)"
            );
            return Ok(ExitCode::SUCCESS);
        }
    };
    if cmd == "--help" || cmd == "help" {
        println!("{HELP}");
        return Ok(ExitCode::SUCCESS);
    }
    match cmd {
        "locks" => {
            println!("{:<18} {:<10} {:>5} {:>4}  summary", "name", "family", "sites", "sym");
            for e in registry::catalog() {
                let sites = e.client(2, 1).relaxable_sites().len();
                let sym = if e.symmetric_client() { "yes" } else { "-" };
                println!("{:<18} {:<10} {:>5} {:>4}  {}", e.name, e.family, sites, sym, e.summary);
            }
            println!(
                "\nverify or optimize any entry: `vsync verify <name>`, `vsync optimize <name> \
                 [--strategy sequential|parallel|adaptive] [--workers N]`"
            );
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let (name, rest) = rest.split_first().ok_or("verify needs a lock name")?;
            let o = Options::parse(rest)?;
            let entry = registry::entry(name)
                .ok_or_else(|| format!("unknown lock '{name}' (try `vsync locks`)"))?;
            let tel = Telemetry::start(&o)?;
            let r = tel.session(o.session(entry.client(o.threads, o.acquires))).run();
            tel.finish(&report_profile(&r), r.elapsed);
            Ok(report(&r, &o))
        }
        "optimize" => {
            let (name, rest) = rest.split_first().ok_or("optimize needs a lock name")?;
            let o = Options::parse(rest)?;
            let entry = registry::entry(name)
                .ok_or_else(|| format!("unknown lock '{name}' (try `vsync locks`)"))?;
            let p = entry.client(o.threads, o.acquires).with_all_sc();
            if o.enumerate {
                if o.deadline.is_some() || o.json || o.progress || o.models.len() > 1 {
                    eprintln!(
                        "note: --enumerate honors --model and --workers only; \
                         other session flags are ignored"
                    );
                }
                let cfg = OptimizerConfig::with_amc(
                    AmcConfig::with_model(o.models[0])
                        .with_workers(o.workers)
                        .with_symmetry(o.symmetry),
                );
                let (names, maximal) = enumerate_maximal(&p, &cfg);
                println!("{} maximally-relaxed assignment(s):", maximal.len());
                for (i, modes) in maximal.iter().enumerate() {
                    println!("#{i}");
                    for (n, m) in names.iter().zip(modes) {
                        println!("  {n:<44} {m}");
                    }
                }
                Ok(ExitCode::SUCCESS)
            } else {
                let ocfg =
                    OptimizerConfig::default().with_strategy(o.strategy).with_max_passes(o.passes);
                let tel = Telemetry::start(&o)?;
                let mut s = tel.session(o.session(p).optimize(ocfg));
                if o.steps {
                    s = s.on_optimize_step(|e| {
                        eprintln!(
                            "[pass {} {:<10}] {} {:<44} {} -> {}",
                            e.pass,
                            e.phase,
                            if e.step.accepted { "accept" } else { "reject" },
                            e.site,
                            e.step.from,
                            e.step.to
                        );
                    });
                }
                let r = s.run();
                tel.finish(&report_profile(&r), r.elapsed);
                if o.json {
                    println!("{}", r.to_json());
                } else {
                    print!("{}", r.render());
                }
                Ok(session_exit_code(&r))
            }
        }
        "bug" => {
            let (which, rest) = rest.split_first().ok_or("bug needs dpdk|huawei")?;
            let o = Options::parse(rest)?;
            let p = match which.as_str() {
                "dpdk" => dpdk_scenario(o.fixed),
                "huawei" => huawei_scenario(o.fixed),
                other => return Err(format!("unknown study case '{other}'")),
            };
            let tel = Telemetry::start(&o)?;
            let r = tel.session(o.session(p)).run();
            tel.finish(&report_profile(&r), r.elapsed);
            Ok(report(&r, &o))
        }
        "check" => {
            let (file, rest) = rest.split_first().ok_or("check needs a .litmus file")?;
            let o = Options::parse(rest)?;
            let tel = Telemetry::start(&o)?;
            let mut copts = o.corpus_options();
            tel.corpus(&mut copts);
            let r = match run_corpus(Path::new(file), &copts) {
                Ok(r) => r,
                Err(e) => return Ok(unreadable_input(&e)),
            };
            tel.finish(&corpus_profile(&r), r.elapsed);
            if let Some(dir) = &o.dot_dir {
                write_corpus_dots(dir, &r)?;
            }
            if o.json {
                println!("{}", r.to_json());
            } else {
                print!("{}", r.render_table());
            }
            Ok(corpus_exit_code(&r))
        }
        "corpus" => {
            let (dir, rest) = rest.split_first().ok_or("corpus needs a directory")?;
            let o = Options::parse(rest)?;
            let tel = Telemetry::start(&o)?;
            let mut copts = o.corpus_options();
            tel.corpus(&mut copts);
            let r = match run_corpus(Path::new(dir), &copts) {
                Ok(r) => r,
                Err(e) => return Ok(unreadable_input(&e)),
            };
            tel.finish(&corpus_profile(&r), r.elapsed);
            if r.files.is_empty() {
                return Err(format!("no .litmus files under {dir}"));
            }
            if o.json {
                println!("{}", r.to_json());
            } else {
                print!("{}", r.render_table());
            }
            Ok(corpus_exit_code(&r))
        }
        "fmt" => {
            let mut check = false;
            let mut write = false;
            let mut paths: Vec<&str> = Vec::new();
            for a in rest {
                match a.as_str() {
                    "--check" => check = true,
                    "--write" => write = true,
                    other if !other.starts_with("--") => paths.push(other),
                    other => return Err(format!("unknown option {other}")),
                }
            }
            if check && write {
                return Err("--check and --write are mutually exclusive".into());
            }
            if paths.is_empty() {
                return Err("fmt needs at least one file or directory".into());
            }
            let mut files = Vec::new();
            for p in paths {
                let mut found = collect_litmus_files(Path::new(p))
                    .map_err(|e| format!("cannot read {p}: {e}"))?;
                if found.is_empty() {
                    return Err(format!("no .litmus files under {p}"));
                }
                files.append(&mut found);
            }
            let mut failed = false;
            for path in files {
                let label = path.display().to_string();
                let src = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {label}: {e}"))?;
                match vsync::dsl::format_source(&src) {
                    Err(d) => {
                        eprint!("{}", d.with_file(&label).render());
                        failed = true;
                    }
                    Ok(formatted) if check => {
                        if formatted != src {
                            eprintln!("would reformat {label}");
                            failed = true;
                        }
                    }
                    Ok(formatted) if write => {
                        if formatted != src {
                            std::fs::write(&path, formatted)
                                .map_err(|e| format!("cannot write {label}: {e}"))?;
                            eprintln!("reformatted {label}");
                        }
                    }
                    Ok(formatted) => print!("{formatted}"),
                }
            }
            Ok(if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS })
        }
        "litmus" => {
            let (name, rest) = rest.split_first().ok_or("litmus needs a shape name")?;
            let o = Options::parse(rest)?;
            let p = litmus(name)?;
            let r = o.session(p).collect_executions().run();
            for m in &r.models {
                println!(
                    "{name} under {}: {} consistent executions",
                    m.model, m.stats.complete_executions
                );
                for (i, g) in m.executions.iter().enumerate() {
                    println!("--- execution {i} ---\n{}", g.render());
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
