//! # vsync — Await Model Checking and barrier optimization in Rust
//!
//! A from-scratch reproduction of *"VSync: Push-Button Verification and
//! Optimization for Synchronization Primitives on Weak Memory Models"*
//! (Oberhauser et al., ASPLOS 2021).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] — execution graphs (events, po/rf/mo relations);
//! * [`model`] — weak memory models (`SC`, `TSO`, RC11-style `VMM`);
//! * [`lang`] — the modeling language with primitive awaits and its
//!   graph-driven replay semantics;
//! * [`dsl`] — the textual litmus frontend: parser, pretty-printer and
//!   per-model expected-verdict annotations for `.litmus` files;
//! * [`core`] — **AMC**, the await-aware stateless model checker, the
//!   push-button barrier optimizer (the paper's contribution), and the
//!   [`core::Session`] pipeline that fronts them;
//! * [`locks`] — the verified lock catalog (incl. the paper's three study
//!   cases), its name-based [`locks::registry`], and the 18 runtime locks
//!   of the evaluation;
//! * [`shim`] — the loom-style instrumented runtime: drop-in
//!   `shim::atomic` types and `shim::Mutex` record *real Rust code* under
//!   a deterministic scheduler and lower the trace into a checkable
//!   program ([`shim::SessionExt::from_shim`]);
//! * [`sim`] — the deterministic virtual-time multicore simulator behind
//!   the performance evaluation.
//!
//! ## Quickstart
//!
//! One [`core::Session`] takes a named lock to a structured, per-model
//! [`core::Report`] — the paper's push-button workflow:
//!
//! ```
//! use vsync::core::Session;
//! use vsync::locks::SessionExt as _;
//! use vsync::model::ModelKind;
//!
//! // Verify the paper's Fig. 3 TTAS lock: mutual exclusion + await
//! // termination under SC, TSO and the weak memory model.
//! let report = Session::lock("ttas", 2, 1).models(ModelKind::all()).run();
//! assert!(report.is_verified());
//! assert_eq!(report.models.len(), 3);
//! println!("{}", report.to_json());
//! ```
//!
//! New scenarios need no recompilation: [`core::Session::from_source`]
//! (and `from_path` / the `vsync check` CLI) accepts the litmus text
//! format, with the model matrix taken from the file's `expect`
//! annotations:
//!
//! ```
//! use vsync::core::Session;
//!
//! let report = Session::from_source(r#"
//!     litmus "message-passing"
//!     thread { store.rlx data, 1  store.rel flag, 1 }
//!     thread {
//!       r0 = await_eq.acq flag, 1
//!       r1 = load.rlx data
//!       assert r1 == 1, "flag implies data"
//!     }
//!     expect sc: verified
//!     expect vmm: verified
//! "#).expect("well-formed").run();
//! assert!(report.is_verified());
//! assert_eq!(report.models.len(), 2);
//! ```
//!
//! And real Rust code — ordinary `while` loops over instrumented atomics
//! — is checked by recording it through the [`shim`]:
//!
//! ```
//! use vsync::core::Session;
//! use vsync::shim::atomic::{AtomicU32, Ordering};
//! use vsync::shim::{site, Model, SessionExt as _};
//!
//! let lock = AtomicU32::new(0);
//! let counter = AtomicU32::new(0);
//! let rec = Model::new("tas-spinlock")
//!     .template(2, |_| {
//!         // A real test-and-set acquire; the annotated spin lowers to a
//!         // native await at a relaxable barrier site.
//!         site("acquire", || while lock.swap(1, Ordering::Acquire) != 0 {});
//!         let c = counter.load(Ordering::Relaxed);
//!         counter.store(c + 1, Ordering::Relaxed);
//!         site("release", || lock.store(0, Ordering::Release));
//!     })
//!     .final_eq(&counter, 2, "no increment is lost")
//!     .record()
//!     .expect("records and lowers");
//! assert_eq!(rec.annotated_sites(), ["acquire", "release"]);
//! assert!(Session::from_shim(&rec).run().is_verified());
//! ```

#![warn(missing_docs)]

pub use vsync_core as core;
pub use vsync_dsl as dsl;
pub use vsync_graph as graph;
pub use vsync_lang as lang;
pub use vsync_locks as locks;
pub use vsync_model as model;
pub use vsync_shim as shim;
pub use vsync_sim as sim;
