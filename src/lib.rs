//! # vsync — await model checking and barrier optimization in Rust
//!
//! A from-scratch reproduction of *"VSync: Push-Button Verification and
//! Optimization for Synchronization Primitives on Weak Memory Models"*
//! (Oberhauser et al., ASPLOS 2021).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] — execution graphs (events, po/rf/mo relations);
//! * [`model`] — weak memory models (`SC`, `TSO`, RC11-style `VMM`);
//! * [`lang`] — the modeling language with primitive awaits and its
//!   graph-driven replay semantics;
//! * [`core`] — **AMC**, the await-aware stateless model checker, and the
//!   push-button barrier optimizer (the paper's contribution);
//! * [`locks`] — the verified lock catalog (incl. the paper's three study
//!   cases) and the 18 runtime locks of the evaluation;
//! * [`sim`] — the deterministic virtual-time multicore simulator behind
//!   the performance evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use vsync::core::{verify, AmcConfig};
//! use vsync::locks::model::{mutex_client, TtasLock};
//!
//! // Verify the paper's Fig. 3 TTAS lock: mutual exclusion + await
//! // termination under the weak memory model.
//! let program = mutex_client(&TtasLock::default(), 2, 1);
//! let verdict = verify(&program, &AmcConfig::default());
//! assert!(verdict.is_verified());
//! ```

#![warn(missing_docs)]

pub use vsync_core as core;
pub use vsync_graph as graph;
pub use vsync_lang as lang;
pub use vsync_locks as locks;
pub use vsync_model as model;
pub use vsync_sim as sim;
